"""Trace generation: baseline plus scheduled anomalies.

:class:`TraceGenerator` synthesizes a labelled NetFlow trace spanning any
number of measurement intervals: baseline flows drawn from a
:class:`~repro.traffic.baseline.BaselineTrafficModel` with diurnal rate
modulation, merged with the event flows of an
:class:`~repro.anomalies.schedule.EventSchedule`.  The output pair
``(FlowTable, GeneratedTrace)`` is everything the evaluation needs:
flows with exact per-flow ground truth plus per-event records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.base import InjectedEvent
from repro.anomalies.schedule import EventSchedule, anomalous_interval_indices
from repro.errors import ConfigError
from repro.flows.stream import DEFAULT_INTERVAL_SECONDS
from repro.flows.table import FlowTable
from repro.traffic.baseline import BaselineTrafficModel
from repro.traffic.diurnal import interval_flow_count
from repro.traffic.profiles import TrafficProfile, switch_like


@dataclass(frozen=True)
class GeneratedTrace:
    """A labelled synthetic trace plus its ground truth.

    Attributes:
        flows: every flow (baseline + events), sorted by start time.
        events: ground-truth record per injected event occurrence.
        interval_seconds: the measurement interval length used.
        n_intervals: total number of intervals in the trace.
        profile: the traffic profile the baseline was drawn from.
    """

    flows: FlowTable
    events: list[InjectedEvent]
    interval_seconds: float
    n_intervals: int
    profile: TrafficProfile

    @property
    def duration(self) -> float:
        return self.n_intervals * self.interval_seconds

    def anomalous_intervals(self) -> set[int]:
        """Interval indices touched by at least one event (ground truth)."""
        return anomalous_interval_indices(
            self.events, self.interval_seconds, self.n_intervals
        )

    def events_in_interval(self, index: int) -> list[InjectedEvent]:
        """Ground-truth events active during interval ``index``."""
        t0 = index * self.interval_seconds
        t1 = t0 + self.interval_seconds
        return [event for event in self.events if event.overlaps(t0, t1)]


class TraceGenerator:
    """Reproducible generator of labelled backbone traces."""

    def __init__(
        self,
        profile: TrafficProfile | None = None,
        seed: int = 0,
        diurnal_amplitude: float = 0.35,
        weekend_dip: float = 0.25,
    ):
        self.profile = profile or switch_like()
        self.seed = seed
        self.diurnal_amplitude = diurnal_amplitude
        self.weekend_dip = weekend_dip
        self._model = BaselineTrafficModel(self.profile, seed=seed)

    @property
    def baseline_model(self) -> BaselineTrafficModel:
        return self._model

    def generate(
        self,
        n_intervals: int,
        schedule: EventSchedule | None = None,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    ) -> GeneratedTrace:
        """Generate ``n_intervals`` of traffic starting at t=0.

        Baseline volume per interval is Poisson around the diurnal
        expectation; event flows come from the schedule unchanged.
        """
        if n_intervals < 1:
            raise ConfigError(f"need at least one interval: {n_intervals}")
        if interval_seconds <= 0:
            raise ConfigError(
                f"interval length must be positive: {interval_seconds}"
            )
        rng = np.random.default_rng(self.seed + 0x7ACE)
        pieces: list[FlowTable] = []
        for k in range(n_intervals):
            t0 = k * interval_seconds
            expected = interval_flow_count(
                self.profile.flows_per_interval,
                t0,
                interval_seconds,
                amplitude=self.diurnal_amplitude,
                weekend_dip=self.weekend_dip,
            )
            count = int(rng.poisson(expected))
            pieces.append(
                self._model.sample(count, t0, t0 + interval_seconds, rng=rng)
            )
        events: list[InjectedEvent] = []
        if schedule is not None and len(schedule):
            horizon = n_intervals * interval_seconds
            for occ in schedule.occurrences:
                if occ.start >= horizon:
                    raise ConfigError(
                        f"occurrence at t={occ.start} starts beyond the "
                        f"trace horizon {horizon}"
                    )
            event_flows, events = schedule.materialize(rng)
            pieces.append(event_flows)
        flows = FlowTable.concat(pieces).sort_by_start()
        return GeneratedTrace(
            flows=flows,
            events=events,
            interval_seconds=interval_seconds,
            n_intervals=n_intervals,
            profile=self.profile,
        )

    def generate_interval(
        self,
        index: int = 0,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        flow_count: int | None = None,
    ) -> FlowTable:
        """Generate a single baseline interval (no events, no Poisson
        noise when ``flow_count`` is given) - handy for unit tests."""
        rng = np.random.default_rng(self.seed + index)
        t0 = index * interval_seconds
        if flow_count is None:
            flow_count = self.profile.flows_per_interval
        return self._model.sample(flow_count, t0, t0 + interval_seconds, rng=rng)
