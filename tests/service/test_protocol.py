"""HTTP parsing/rendering unit tests (no sockets: fed StreamReaders)."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    MAX_HEADER_BYTES,
    read_request,
    render_response,
)


def parse(raw: bytes, max_body: int = 1 << 20):
    """Run read_request over an in-memory stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(
            b"GET /incidents?top=5&profile=balanced HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/incidents"
        assert request.query == {"top": "5", "profile": "balanced"}
        assert request.headers["host"] == "localhost"
        assert request.body == b""

    def test_post_with_body(self):
        request = parse(
            b"POST /ingest HTTP/1.1\r\n"
            b"Content-Length: 11\r\n\r\n"
            b"hello,world"
        )
        assert request.method == "POST"
        assert request.body == b"hello,world"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_method_uppercased_headers_lowercased(self):
        request = parse(
            b"get /healthz HTTP/1.0\r\nX-Custom-Header: v\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.headers == {"x-custom-header": "v"}

    def test_blank_query_values_kept(self):
        request = parse(b"GET /incidents?top= HTTP/1.1\r\n\r\n")
        assert request.query == {"top": ""}

    def test_malformed_request_line(self):
        with pytest.raises(ServiceError, match="malformed request line"):
            parse(b"GET/HTTP/1.1\r\n\r\n")

    def test_unsupported_protocol_version(self):
        with pytest.raises(ServiceError, match="protocol version"):
            parse(b"GET / HTTP/2\r\n\r\n")

    def test_malformed_header_line(self):
        with pytest.raises(ServiceError, match="malformed header"):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_chunked_transfer_rejected(self):
        with pytest.raises(ServiceError, match="chunked"):
            parse(
                b"POST /ingest HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )

    def test_malformed_content_length(self):
        with pytest.raises(ServiceError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_negative_content_length(self):
        with pytest.raises(ServiceError, match="negative"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")

    def test_oversize_body_refused_before_reading(self):
        with pytest.raises(ServiceError, match="max_body_bytes"):
            parse(
                b"POST /ingest HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
                max_body=10,
            )

    def test_truncated_body(self):
        with pytest.raises(ServiceError, match="short"):
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
            )

    def test_header_block_cap(self):
        # Many individually modest lines still trip the accumulated cap.
        lines = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"a" * 100) for i in range(700)
        )
        assert len(lines) > MAX_HEADER_BYTES
        with pytest.raises(ServiceError, match="header block"):
            parse(b"GET / HTTP/1.1\r\n" + lines + b"\r\n")

    def test_single_overlong_header_line(self):
        # One line past the StreamReader limit maps to a 400-worthy
        # ServiceError rather than crashing the connection handler.
        huge = b"X-Pad: " + b"a" * MAX_HEADER_BYTES + b"\r\n"
        with pytest.raises(ServiceError, match="too long"):
            parse(b"GET / HTTP/1.1\r\n" + huge + b"\r\n")


class TestRenderResponse:
    def test_shape(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b'{"ok": true}'
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Type: application/json" in lines
        assert "Content-Length: 12" in lines
        assert "Connection: close" in lines

    def test_content_type_override(self):
        raw = render_response(200, b"# HELP", "text/plain; version=0.0.4")
        assert b"Content-Type: text/plain; version=0.0.4\r\n" in raw

    @pytest.mark.parametrize("status,phrase", [
        (400, "Bad Request"),
        (404, "Not Found"),
        (405, "Method Not Allowed"),
        (409, "Conflict"),
        (413, "Payload Too Large"),
        (500, "Internal Server Error"),
    ])
    def test_status_phrases(self, status, phrase):
        raw = render_response(status, b"{}")
        assert raw.startswith(f"HTTP/1.1 {status} {phrase}\r\n".encode())
