"""SQLite-backed persistence for extraction reports.

The pipeline's per-interval reports are ephemeral; at production scale
the same anomaly spans many intervals and nobody re-reads raw tables.
:class:`IncidentStore` persists every alarmed interval's
:class:`~repro.core.report.ExtractionReport` - item-sets with supports
and triage hints, detector votes, interval bounds - in a single SQLite
file (stdlib ``sqlite3``, WAL journal), with append/query/compact APIs.

The store is a faithful log: a report appended and read back is equal,
as an object and byte-for-byte as canonical JSON, to the in-memory one
(``tests/incidents/test_store.py`` holds the invariant).  The
side-table of individual item-sets exists purely for indexed queries
(per-item-set history, incident drill-down); the JSON column is the
source of truth.
"""

from __future__ import annotations

import os
import sqlite3
from collections.abc import Iterable, Iterator
from contextlib import contextmanager

from repro.core.report import ExtractionReport
from repro.errors import IncidentError
from repro.obs.metrics import NULL_REGISTRY, time_stage

#: Bump when the table layout changes; the store refuses to open a
#: database written by a different layout instead of misreading it.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS reports (
    report_id INTEGER PRIMARY KEY AUTOINCREMENT,
    interval  INTEGER NOT NULL,
    start     REAL NOT NULL,
    end       REAL NOT NULL,
    json      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_reports_interval ON reports (interval);
CREATE TABLE IF NOT EXISTS itemsets (
    report_id INTEGER NOT NULL REFERENCES reports (report_id)
        ON DELETE CASCADE,
    interval  INTEGER NOT NULL,
    key       TEXT NOT NULL,
    support   INTEGER NOT NULL,
    hint      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_itemsets_key ON itemsets (key);
CREATE INDEX IF NOT EXISTS idx_itemsets_report ON itemsets (report_id);
"""


def itemset_key(items: Iterable[int]) -> str:
    """Canonical text key of an encoded item tuple ("a,b,c")."""
    return ",".join(str(int(i)) for i in items)


def parse_itemset_key(key: str) -> tuple[int, ...]:
    """Inverse of :func:`itemset_key`."""
    try:
        return tuple(int(part) for part in key.split(","))
    except ValueError as exc:
        raise IncidentError(f"malformed item-set key: {key!r}") from exc


class IncidentStore:
    """Append-only report log with indexed queries over one SQLite file.

    Usage::

        with IncidentStore("incidents.db") as store:
            extractor.run_trace(flows, 900.0, sink=store)
            for report in store.reports():
                print(report.interval, len(report.itemsets))

    The store doubles as the ``sink`` object the batch and streaming
    drivers accept: its :meth:`append` signature is the whole sink
    protocol.  ``":memory:"`` is accepted for tests and scratch work.
    """

    def __init__(
        self,
        path: str,
        timeout: float = 30.0,
        jaccard: float | None = None,
        quiet_gap: int | None = None,
        metrics=None,
    ):
        self.path = path
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_appends = registry.counter(
            "repro_store_appends_total",
            "Reports persisted into the incident store.",
        )
        self._m_refusals = registry.counter(
            "repro_store_reingest_refusals_total",
            "Appends refused by the monotonic re-ingest guard.",
        )
        self._m_query = registry.histogram(
            "repro_store_query_seconds",
            "Wall-clock seconds per incidents() correlation query.",
        )
        # Validate and canonicalize explicit knobs BEFORE anything is
        # persisted: a bad (or non-canonically rendered, e.g.
        # quiet_gap=2.0 -> "2.0") value written into store_meta would
        # poison every later open (same bounds as ExtractionConfig /
        # IncidentCorrelator).
        if jaccard is not None:
            if not 0 < jaccard <= 1:
                raise IncidentError(
                    f"jaccard must be in (0, 1]: {jaccard}"
                )
            jaccard = float(jaccard)
        if quiet_gap is not None:
            if int(quiet_gap) != quiet_gap or quiet_gap < 1:
                raise IncidentError(
                    f"quiet_gap must be an integer >= 1: {quiet_gap}"
                )
            quiet_gap = int(quiet_gap)
        try:
            self._conn = sqlite3.connect(path, timeout=timeout)
        except sqlite3.Error as exc:
            raise IncidentError(f"cannot open store at {path!r}: {exc}") from exc
        try:
            # Refuse a database we cannot adopt BEFORE any write (the
            # WAL pragma alone would permanently convert the file, and
            # the schema script would plant v1 tables inside it): an
            # existing database must be empty or a store of the
            # supported layout.
            tables = {
                row[0] for row in self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if tables and "store_meta" not in tables:
                raise IncidentError(
                    f"{path!r} holds another application's tables, "
                    "not an incident store"
                )
            if "store_meta" in tables:
                self._reject_version_mismatch()
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.executescript(_SCHEMA)
            self._stamp_schema_version()
            #: Default correlation knobs for :meth:`incidents`.
            #: Explicit values (the pipeline threads
            #: ``ExtractionConfig.incident_jaccard`` /
            #: ``incident_quiet_gap`` through here) are persisted in
            #: ``store_meta``, so a later ``repro-extract incidents``
            #: query correlates with the knobs the store was *written*
            #: with instead of silently reverting to 0.5/2.
            self.jaccard = float(
                self._resolve_knob("incident_jaccard", jaccard, 0.5)
            )
            self.quiet_gap = int(
                self._resolve_knob("incident_quiet_gap", quiet_gap, 2)
            )
            # In-memory mirror of the store_meta marker so the ingest
            # hot path (one guard check per append, one note per
            # interval) never re-reads it; valid because the monotonic
            # guard already assumes a single writer.
            row = self._conn.execute(
                "SELECT value FROM store_meta "
                "WHERE key = 'last_interval'"
            ).fetchone()
            self._last_interval = None if row is None else int(row[0])
        except (sqlite3.Error, ValueError, TypeError) as exc:
            # e.g. the path names an existing file that is not SQLite,
            # a persisted knob value is corrupt, or a write fails while
            # stamping - one contract for everything after connect():
            # wrap in IncidentError and never leak the connection.
            self._conn.close()
            raise IncidentError(
                f"cannot open store at {path!r}: {exc}"
            ) from exc
        except BaseException:
            self._conn.close()
            raise

    def _resolve_knob(self, key, given, default):
        with self._wrap_db_errors():
            if given is not None:
                conn = self._conn
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO store_meta (key, value) "
                        "VALUES (?, ?)",
                        (key, str(given)),
                    )
                return given
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = ?", (key,)
            ).fetchone()
            return default if row is None else row[0]

    def _reject_version_mismatch(self) -> None:
        """Raise (without writing anything) when the existing store was
        written by a different schema version."""
        with self._wrap_db_errors():
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
        if row is not None and row[0] != str(SCHEMA_VERSION):
            raise IncidentError(
                f"{self.path}: store schema version {row[0]} != "
                f"supported {SCHEMA_VERSION}"
            )

    def _stamp_schema_version(self) -> None:
        with self._wrap_db_errors():
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._conn.commit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "IncidentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise IncidentError(f"store at {self.path!r} is closed")
        return self._conn

    @contextmanager
    def _wrap_db_errors(self):
        """Surface sqlite failures (locked database, disk full, ...)
        as IncidentError so the CLI's 'error: ...' exit-2 contract
        holds for every operation, not just open/decode."""
        try:
            yield
        except sqlite3.Error as exc:
            raise IncidentError(f"{self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def _insert(
        self, conn: sqlite3.Connection, report: ExtractionReport
    ) -> int:
        with self._wrap_db_errors():
            cursor = conn.execute(
                "INSERT INTO reports (interval, start, end, json) "
                "VALUES (?, ?, ?, ?)",
                (report.interval, report.start, report.end,
                 report.to_json()),
            )
            report_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO itemsets "
                "(report_id, interval, key, support, hint) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (report_id, report.interval,
                     itemset_key(t.itemset.items), t.itemset.support,
                     t.hint)
                    for t in report.itemsets
                ],
            )
            return int(report_id)

    def _reject_reingest(self, interval: int, last: int | None) -> None:
        """The store is a monotonic log: once the pipeline has noted
        processing up to interval ``last``, a report for an interval <=
        ``last`` is a re-ingest of data already covered (e.g. re-running
        extract or stream with ``--store`` against the same database)
        and would silently duplicate every report and double the
        supports."""
        if last is not None and interval <= last:
            self._m_refusals.inc()
            raise IncidentError(
                f"{self.path}: already covers intervals up to {last}; "
                f"appending interval {interval} would duplicate "
                "reports - re-ingest into a fresh store, or resume the "
                "run instead of replaying it (`repro-extract serve "
                "--resume` restores a checkpointed daemon mid-stream "
                "and skips intervals the store already covers)"
            )

    def append(self, report: ExtractionReport) -> int:
        """Persist one report; returns its row id.

        This is the report-sink protocol consumed by
        :meth:`~repro.core.pipeline.AnomalyExtractor.run_trace` and
        :meth:`~repro.core.pipeline.AnomalyExtractor.run_stream`.
        The marker advances in the SAME transaction, so the re-ingest
        guard is armed atomically with the data it protects - which
        also makes single appends strictly interval-ordered (bulk-load
        unordered batches with :meth:`extend`).
        """
        conn = self._connection()
        self._reject_reingest(report.interval, self._last_interval)
        with self._wrap_db_errors(), conn:
            row_id = self._insert(conn, report)
            advanced = self._note_in_txn(conn, report.interval)
        if advanced is not None:
            self._last_interval = advanced
        self._m_appends.inc()
        return row_id

    def extend(self, reports: Iterable[ExtractionReport]) -> int:
        """Append many reports in ONE transaction (bulk ingest pays a
        single commit instead of one per report); returns how many were
        written.

        One batch is one ingest: intervals may arrive in any order
        *within* the batch, but the newest interval advances the marker
        in the same transaction, so a repeated bulk import trips the
        re-ingest guard instead of silently duplicating the log (no
        crash window between the data and the guard)."""
        conn = self._connection()
        count = 0
        newest = None
        advanced = None
        # The marker cannot change mid-transaction - read it once.
        last = self._last_interval
        with self._wrap_db_errors(), conn:
            for report in reports:
                self._reject_reingest(report.interval, last)
                self._insert(conn, report)
                count += 1
                if newest is None or report.interval > newest:
                    newest = report.interval
            if newest is not None:
                advanced = self._note_in_txn(conn, newest)
        if advanced is not None:
            self._last_interval = advanced
        self._m_appends.inc(count)
        return count

    def _note_in_txn(
        self, conn: sqlite3.Connection, interval: int
    ) -> int | None:
        """Advance the marker inside the caller's transaction; returns
        the new value when it advanced (the caller updates the cache
        only after the transaction commits)."""
        interval = int(interval)
        if (
            self._last_interval is not None
            and interval <= self._last_interval
        ):
            return None
        with self._wrap_db_errors():
            conn.execute(
                "INSERT OR REPLACE INTO store_meta (key, value) "
                "VALUES ('last_interval', ?)",
                (str(interval),),
            )
        return interval

    def note_interval(self, interval: int) -> None:
        """Record that the pipeline processed up to ``interval`` - even
        when it produced no report (clean intervals leave no row, but
        they must still age incidents toward quiet/closed).  Monotonic:
        an older value never overwrites a newer one.  The batch and
        streaming drivers call this automatically when the store is
        their sink.
        """
        if (
            self._last_interval is not None
            and int(interval) <= self._last_interval
        ):
            return
        conn = self._connection()
        with self._wrap_db_errors(), conn:
            advanced = self._note_in_txn(conn, interval)
        if advanced is not None:
            self._last_interval = advanced

    def last_interval(self) -> int | None:
        """Newest interval the pipeline reported processing via
        :meth:`note_interval` (None for stores written before the
        pipeline started recording it)."""
        return self._last_interval

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _decode(self, payload: str) -> ExtractionReport:
        try:
            return ExtractionReport.from_json(payload)
        except (ValueError, KeyError, TypeError) as exc:
            # Truncated/hand-edited row: surface as a ReproError so the
            # CLI prints "error: ..." and exits 2 instead of a raw
            # traceback.
            raise IncidentError(
                f"{self.path}: corrupt report row ({exc})"
            ) from exc

    def __len__(self) -> int:
        with self._wrap_db_errors():
            row = self._connection().execute(
                "SELECT COUNT(*) FROM reports"
            ).fetchone()
        return int(row[0])

    def intervals(self) -> list[int]:
        """Distinct interval indices with at least one report, ascending."""
        with self._wrap_db_errors():
            rows = self._connection().execute(
                "SELECT DISTINCT interval FROM reports ORDER BY interval"
            ).fetchall()
        return [int(r[0]) for r in rows]

    def iter_reports(
        self,
        since: int | None = None,
        until: int | None = None,
    ) -> Iterator[ExtractionReport]:
        """Stream reports in (interval, insertion) order.

        Args:
            since: keep reports with ``interval >= since``.
            until: keep reports with ``interval <= until``.
        """
        clauses, params = [], []
        if since is not None:
            clauses.append("interval >= ?")
            params.append(int(since))
        if until is not None:
            clauses.append("interval <= ?")
            params.append(int(until))
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._wrap_db_errors():
            cursor = self._connection().execute(
                f"SELECT json FROM reports {where} "
                "ORDER BY interval, report_id",
                params,
            )
            for (payload,) in cursor:
                yield self._decode(payload)

    def reports(
        self,
        since: int | None = None,
        until: int | None = None,
    ) -> list[ExtractionReport]:
        """Eager version of :meth:`iter_reports`."""
        return list(self.iter_reports(since=since, until=until))

    def report_at(self, interval: int) -> ExtractionReport:
        """The report of one interval (first, if several were appended)."""
        with self._wrap_db_errors():
            row = self._connection().execute(
                "SELECT json FROM reports WHERE interval = ? "
                "ORDER BY report_id LIMIT 1",
                (int(interval),),
            ).fetchone()
        if row is None:
            raise IncidentError(
                f"{self.path}: no report stored for interval {interval}"
            )
        return self._decode(row[0])

    def itemset_history(
        self,
        items: Iterable[int],
        since: int | None = None,
        until: int | None = None,
    ) -> list[tuple[int, int, str]]:
        """Every occurrence of one exact item-set across the log.

        Returns ``(interval, support, hint)`` rows in interval order -
        the raw material of an incident drill-down.  ``since``/``until``
        bound the intervals (inclusive): an incident's drill-down passes
        its own ``first_seen``/``last_seen`` so it doesn't absorb the
        history of an earlier, closed incident that happened to carry
        the same item-set key.
        """
        clauses, params = ["key = ?"], [itemset_key(items)]
        if since is not None:
            clauses.append("interval >= ?")
            params.append(int(since))
        if until is not None:
            clauses.append("interval <= ?")
            params.append(int(until))
        with self._wrap_db_errors():
            rows = self._connection().execute(
                "SELECT interval, support, hint FROM itemsets "
                f"WHERE {' AND '.join(clauses)} "
                "ORDER BY interval, report_id",
                params,
            ).fetchall()
        return [(int(i), int(s), str(h)) for i, s, h in rows]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def compact(
        self, before_interval: int | None = None, vacuum: bool = True
    ) -> int:
        """Drop old reports and reclaim file space.

        Args:
            before_interval: delete reports with
                ``interval < before_interval`` (``None`` deletes
                nothing - pure VACUUM).
            vacuum: rewrite the database file afterwards.

        Returns:
            Number of reports deleted.
        """
        conn = self._connection()
        deleted = 0
        with self._wrap_db_errors():
            if before_interval is not None:
                with conn:
                    # The itemsets side-table cascades via the FK.
                    cursor = conn.execute(
                        "DELETE FROM reports WHERE interval < ?",
                        (int(before_interval),),
                    )
                    deleted = cursor.rowcount
            if vacuum:
                conn.execute("VACUUM")
        return int(deleted)

    # ------------------------------------------------------------------
    # Convenience: the full incident view
    # ------------------------------------------------------------------
    def incidents(
        self,
        jaccard: float | None = None,
        quiet_gap: int | None = None,
        profile: str = "balanced",
    ):
        """Correlate and rank everything in the store.

        Returns :class:`~repro.incidents.rank.RankedIncident` objects,
        best first.  A convenience wrapper over
        :func:`~repro.incidents.correlate.correlate` +
        :func:`~repro.incidents.rank.rank_incidents` for CLI and
        notebook use.  ``jaccard``/``quiet_gap`` default to the values
        the store was *written* with (the pipeline seeds them from
        ``ExtractionConfig`` and they persist in ``store_meta``), else
        0.5/2.
        """
        from repro.incidents.correlate import IncidentCorrelator
        from repro.incidents.rank import rank_incidents

        with time_stage(self._m_query):
            correlator = IncidentCorrelator(
                jaccard=self.jaccard if jaccard is None else jaccard,
                quiet_gap=self.quiet_gap if quiet_gap is None else quiet_gap,
            )
            for report in self.iter_reports():
                correlator.observe(report)
            # Lifecycle states age against the last interval the
            # pipeline processed, not merely the last that alarmed -
            # otherwise a long-finished attack followed by clean
            # traffic reads "active" forever.
            return rank_incidents(
                correlator.incidents(now=self.last_interval()),
                profile=profile,
            )


def open_store(
    path: str,
    must_exist: bool = False,
    jaccard: float | None = None,
    quiet_gap: int | None = None,
) -> IncidentStore:
    """Open (or create) a store; with ``must_exist`` a missing file is an
    error instead of a silently created empty database (the CLI query
    path wants that).  ``jaccard``/``quiet_gap`` are the correlation
    knobs to persist (``None`` keeps the store's current values)."""
    if must_exist and path != ":memory:" and not os.path.exists(path):
        raise IncidentError(f"no incident store at {path!r}")
    return IncidentStore(path, jaccard=jaccard, quiet_gap=quiet_gap)
