"""Ablation: the voting threshold V (paper Section III-C).

The paper studies V's effect analytically (Figs. 7-8) and selects
C = V = 3 for the trace experiments: intersection voting suppresses
normal feature values (gamma ~ 2.5e-8) at a bounded miss risk
(beta* ~ 0.087), and "despite the large value [of the bound], none of
the 31 anomalies were missed".

This bench replays the stored per-clone suspicious values of the
two-week run and re-votes them at V=1 (union) versus V=3
(intersection), measuring what the choice buys: how much meta-data,
how many flows pass the prefilter, and how many FP item-sets reach the
operator.
"""

import numpy as np

from repro.analysis.metrics import judge_itemsets
from repro.core.prefilter import prefilter
from repro.detection.metadata import Metadata
from repro.detection.voting import vote
from repro.flows.stream import interval_of
from repro.mining.apriori import apriori
from repro.mining.transactions import TransactionSet

SUPPORT = 100


def _revote(report, min_votes):
    """Re-apply voting to an interval report's stored clone values."""
    metadata = Metadata()
    for feature, obs in report.observations.items():
        if not obs.alarm:
            continue
        values = vote(
            [clone.suspicious_values for clone in obs.clones], min_votes
        )
        if len(values):
            metadata.add(feature, values)
    return metadata


def test_ablation_voting_threshold(benchmark, two_week, report):
    trace = two_week["trace"]
    run = two_week["run"]
    intervals = sorted(trace.anomalous_intervals())

    def sweep():
        stats = {}
        for v in (1, 3):
            meta_values = []
            selectivity = []
            fps = []
            missed = 0
            for idx in intervals:
                interval_report = run.report(idx)
                metadata = _revote(interval_report, v)
                if metadata.is_empty():
                    missed += 1
                    continue
                interval = interval_of(trace.flows, idx, 900.0, origin=0.0)
                selected = prefilter(interval.flows, metadata, "union")
                result = apriori(
                    TransactionSet.from_flows(selected.flows), SUPPORT
                )
                score = judge_itemsets(result.itemsets, interval.flows)
                meta_values.append(metadata.total_values())
                selectivity.append(selected.selectivity)
                fps.append(score.false_positives)
                if not score.all_events_covered:
                    missed += 1
            stats[v] = {
                "meta": float(np.mean(meta_values)),
                "selectivity": float(np.mean(selectivity)),
                "fp": float(np.mean(fps)),
                "missed": missed,
            }
        return stats

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report(
        "",
        "Ablation - voting threshold V (C=3 clones, s=100, 31 intervals)",
    )
    for v, row in sorted(stats.items()):
        label = "union (V=1)" if v == 1 else "intersection (V=3)"
        report(
            f"  {label:20s}: avg meta-data values={row['meta']:.0f}, "
            f"prefilter keeps {row['selectivity']:.0%} of flows, "
            f"avg FP item-sets={row['fp']:.2f}, "
            f"events missed={row['missed']}"
        )

    # V=3 admits no more meta-data than V=1 (voting is monotone)...
    assert stats[3]["meta"] <= stats[1]["meta"]
    assert stats[3]["selectivity"] <= stats[1]["selectivity"] + 1e-9
    # ...and costs at most as many FP item-sets on average.
    assert stats[3]["fp"] <= stats[1]["fp"] + 1e-9
    # The paper's headline: strict voting misses nothing.
    assert stats[3]["missed"] == 0
