"""Interval-close metrics snapshots teed to JSONL.

:class:`MetricsSink` implements the report-sink protocol
(:class:`~repro.core.pipeline.ReportSink` +
:class:`~repro.core.pipeline.IntervalSink`) but persists *metrics*, not
reports: every time the pipeline notes a processed interval, the
sink writes one JSON document - ``{"interval": k, "metrics": <canonical
snapshot>}`` - to its target.  Tee it next to a real report sink
(:class:`~repro.sinks.TeeSink`) and a finished run leaves a replayable
telemetry trail alongside its incident store.
"""

from __future__ import annotations

import json
import os
from typing import IO

__all__ = ["MetricsSink"]


class MetricsSink:
    """Write one metrics snapshot per processed interval as JSONL.

    Owns (and closes) the handle only when constructed from a path,
    mirroring :class:`~repro.sinks.JsonlSink`; use as a context manager
    or call :meth:`close`.

    Args:
        target: path or open text handle for the JSONL stream.
        registry: the :class:`~repro.obs.metrics.MetricsRegistry` to
            snapshot at each interval close.
    """

    def __init__(self, target: str | os.PathLike[str] | IO[str], registry):
        self._owns_handle = isinstance(target, (str, os.PathLike))
        self._handle: IO[str] = (
            open(target, "w") if self._owns_handle else target
        )
        self._registry = registry
        #: Reports that passed through (the sink protocol's append).
        self.appended = 0
        #: Snapshot lines written so far.
        self.snapshots = 0

    def append(self, report: object) -> None:
        """Count a report passing through (reports go to the real sink
        this one is teed with; the metrics trail only needs to know one
        landed)."""
        self.appended += 1

    def note_interval(self, interval: int) -> None:
        document = {
            "interval": int(interval),
            "metrics": self._registry.snapshot(),
        }
        self._handle.write(json.dumps(document, sort_keys=True))
        self._handle.write("\n")
        self.snapshots += 1

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "MetricsSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
