"""Shard-aware partitioning and merging for distributed mining.

The SON two-pass scheme (Savasere-Omiecinski-Navathe; the "partition
algorithm" family the paper's Section III-E points toward for scaling)
splits the transaction set into shards, mines each shard with a
proportionally scaled support threshold, and verifies the union of the
locally frequent candidates with one exact global counting pass.  This
module holds the algorithm-agnostic pieces: splitting a
:class:`~repro.mining.transactions.TransactionSet` into shards, scaling
the threshold, deduplicating candidate item-sets across shards, and
merging per-shard exact counts back into a canonical, re-ranked
:class:`~repro.mining.result.MiningResult`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import MiningError
from repro.mining.maximal import filter_maximal
from repro.mining.result import MiningResult, build_result
from repro.mining.transactions import TransactionSet


def partition_transactions(
    transactions: TransactionSet, n_partitions: int
) -> list[TransactionSet]:
    """Split a transaction set into ``n_partitions`` contiguous shards.

    Shards are row-contiguous views of near-equal size (within one row),
    so concatenating them in order reproduces the input exactly.  Empty
    shards (more partitions than transactions) are dropped.
    """
    if n_partitions < 1:
        raise MiningError(f"n_partitions must be >= 1: {n_partitions}")
    parts = np.array_split(transactions.matrix, n_partitions)
    return [TransactionSet(part) for part in parts if part.shape[0]]


def local_min_support(
    min_support: int, shard_size: int, total_size: int
) -> int:
    """Per-shard support threshold: ``ceil(s * |shard| / |D|)``.

    The SON guarantee: an item-set with global support >= ``s`` must
    reach this proportional threshold in at least one shard (otherwise
    the per-shard supports would sum below ``s``), so mining every shard
    at the scaled threshold produces a candidate superset of the global
    answer - no false negatives by construction.
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1: {min_support}")
    if shard_size < 0 or total_size < shard_size:
        raise MiningError(
            f"invalid shard sizing: shard {shard_size} of {total_size}"
        )
    if total_size == 0:
        return 1
    return max(1, -((-min_support * shard_size) // total_size))


def merge_candidates(
    shard_candidates: Iterable[Iterable[tuple[int, ...]]],
) -> list[tuple[int, ...]]:
    """Deduplicated union of per-shard candidate item-sets.

    Returns a sorted list so the global counting pass (and therefore
    every downstream report) is deterministic regardless of shard
    completion order.
    """
    merged: set[tuple[int, ...]] = set()
    for candidates in shard_candidates:
        merged.update(candidates)
    return sorted(merged)


def count_candidates(
    shard: TransactionSet, candidates: Sequence[tuple[int, ...]]
) -> dict[tuple[int, ...], int]:
    """Exact support of every candidate on one shard."""
    return {items: shard.support_of(items) for items in candidates}


def merge_results(
    shard_counts: Sequence[dict[tuple[int, ...], int]],
    n_transactions: int,
    min_support: int,
    maximal_only: bool = True,
    algorithm: str = "son",
) -> MiningResult:
    """Combine per-shard exact counts into one canonical result.

    Every dict in ``shard_counts`` must cover the same candidate set
    (the output of the global counting pass); supports are summed,
    candidates below ``min_support`` are discarded, and the survivors
    are maximal-filtered and re-ranked into the canonical report order
    by :func:`~repro.mining.result.build_result`.
    """
    totals: dict[tuple[int, ...], int] = {}
    for counts in shard_counts:
        for items, support in counts.items():
            totals[items] = totals.get(items, 0) + support
    frequent = {
        items: support
        for items, support in totals.items()
        if support >= min_support
    }
    kept = filter_maximal(frequent) if maximal_only else frequent
    return build_result(
        algorithm=algorithm,
        all_frequent=frequent,
        maximal=kept,
        n_transactions=n_transactions,
        min_support=min_support,
    )
