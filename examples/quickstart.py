#!/usr/bin/env python3
"""Quickstart: detect and extract a DDoS from a synthetic backbone trace.

Generates six hours of labelled traffic with one injected DDoS, runs the
full online pipeline (histogram detectors -> voting -> union prefilter
-> modified Apriori), and prints the item-set report the operator would
see, plus the exact ground-truth scoring the paper's analysts did by
hand.

Run:
    python examples/quickstart.py
"""

from repro import AnomalyExtractor, DetectorConfig, ExtractionConfig
from repro.analysis import judge_itemsets
from repro.anomalies import DDoSInjector, EventSchedule
from repro.flows import interval_of
from repro.traffic import TraceGenerator, switch_like


def main() -> None:
    # Six hours of 15-minute intervals; the first two hours train the
    # detector thresholds.
    profile = switch_like(flows_per_interval=4_000)
    generator = TraceGenerator(profile, seed=42)

    victim = profile.internal_base + 123
    schedule = EventSchedule()
    schedule.add_at_interval(
        DDoSInjector(victim_ip=victim, target_port=80, flows=6_000,
                     sources=1_500),
        interval_index=20,
        interval_seconds=900.0,
        duration=880.0,
    )
    trace = generator.generate(24, schedule=schedule)
    print(f"generated {len(trace.flows)} flows; ground truth: "
          f"{trace.events[0].description}")

    config = ExtractionConfig(
        detector=DetectorConfig(
            clones=3, bins=1024, vote_threshold=3, training_intervals=8
        ),
        min_support=800,
    )
    extractor = AnomalyExtractor(config, seed=7)
    result = extractor.run_trace(trace.flows, trace.interval_seconds)

    if not result.extractions:
        raise SystemExit("no alarms raised - try a larger event")

    for extraction in result.extractions:
        print()
        print(extraction.render())
        interval = interval_of(
            trace.flows, extraction.interval, 900.0, origin=0.0
        )
        score = judge_itemsets(extraction.itemsets, interval.flows)
        print(
            f"ground truth: {score.true_positives} TP item-set(s), "
            f"{score.false_positives} FP, events covered: "
            f"{score.events_covered}"
        )
        print(
            "classification cost reduction |F|/|I| = "
            f"{extraction.classification_cost_reduction:,.0f}"
        )


if __name__ == "__main__":
    main()
