"""``repro-extract generate`` - synthesize a labelled trace."""

from __future__ import annotations

import argparse

from repro.flows import write_csv, write_npz
from repro.traffic import TraceGenerator, switch_like


def add_parser(sub: argparse._SubParsersAction) -> None:
    gen = sub.add_parser("generate", help="synthesize a labelled trace")
    gen.add_argument("--intervals", type=int, default=8)
    gen.add_argument("--flows-per-interval", type=int, default=5000)
    gen.add_argument("--with-anomalies", action="store_true")
    gen.add_argument("--scale", type=float, default=0.05)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    from repro.traffic.scenarios import two_week_schedule

    profile = switch_like(args.flows_per_interval)
    generator = TraceGenerator(profile, seed=args.seed)
    schedule = None
    if args.with_anomalies:
        schedule = two_week_schedule(
            profile,
            scale=args.scale,
            seed=args.seed,
            n_intervals=max(args.intervals, 200),
        )
    trace = generator.generate(args.intervals, schedule=schedule)
    if args.out.endswith(".npz"):
        write_npz(trace.flows, args.out)
    else:
        write_csv(trace.flows, args.out)
    print(
        f"wrote {len(trace.flows)} flows over {args.intervals} intervals "
        f"to {args.out}"
    )
    for event in trace.events:
        print(f"  event {event.event_id}: {event.description}")
    return 0
