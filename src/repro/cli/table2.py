"""``repro-extract table2`` - regenerate the Table II running example."""

from __future__ import annotations

import argparse

from repro.mining import TransactionSet, apriori
from repro.traffic import table2_interval


def add_parser(sub: argparse._SubParsersAction) -> None:
    t2 = sub.add_parser("table2", help="regenerate the Table II example")
    t2.add_argument("--scale", type=float, default=0.1)
    t2.add_argument("--min-support", type=int, default=None)
    t2.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    scenario = table2_interval(scale=args.scale, seed=args.seed)
    transactions = TransactionSet.from_flows(scenario.flows)
    support = args.min_support or scenario.min_support
    result = apriori(transactions, support)
    print(
        f"scale {args.scale}: {len(scenario.flows)} flows "
        f"(paper: 350872), min support {support} (paper: 10000)"
    )
    for line in result.summary_lines():
        print(line)
    from repro.core.report import render_itemset_table

    print(render_itemset_table(result.itemsets))
    return 0
