"""CLI metrics export: ``--metrics`` / ``--metrics-format``."""

import json

import pytest

from repro.cli import main

_ARGS = (
    "--bins", "256",
    "--training", "16",
    "--min-support", "300",
)


def _prometheus_schema_check(text: str) -> dict:
    """Minimal exposition-format validation; returns name -> type."""
    types: dict[str, str] = {}
    for line in text.splitlines():
        assert line, "blank line in exposition output"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, metric_type = line.split(" ", 3)
            assert metric_type in ("counter", "gauge", "histogram")
            types[name] = metric_type
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        assert base in types, f"sample {name} has no # TYPE"
        value = line.rsplit(" ", 1)[1]
        assert value == "NaN" or float(value) is not None
    return types


@pytest.fixture(scope="module")
def csv_trace(tmp_path_factory, ddos_trace):
    from repro.flows import write_csv

    path = tmp_path_factory.mktemp("cli-metrics") / "trace.csv"
    write_csv(ddos_trace.flows, str(path))
    return str(path)


class TestStreamMetrics:
    def test_prom_to_stdout(self, csv_trace, capsys):
        assert main(
            ["--seed", "1", "stream", csv_trace, *_ARGS, "--metrics", "-"]
        ) == 0
        out = capsys.readouterr().out
        prom = out[out.index("# HELP"):]
        types = _prometheus_schema_check(prom)
        assert types["repro_io_rows_parsed_total"] == "counter"
        assert types["repro_intervals_processed_total"] == "counter"
        assert types["repro_stage_seconds"] == "histogram"
        assert 'pipeline="default"' in prom

    def test_prom_to_file(self, csv_trace, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        assert main(
            ["--seed", "1", "stream", csv_trace, *_ARGS,
             "--metrics", str(target)]
        ) == 0
        types = _prometheus_schema_check(target.read_text())
        assert "repro_flows_processed_total" in types
        # The human summary still lands on stdout, without the metrics.
        out = capsys.readouterr().out
        assert "# HELP" not in out

    def test_json_format(self, csv_trace, tmp_path):
        target = tmp_path / "metrics.json"
        assert main(
            ["--seed", "1", "stream", csv_trace, *_ARGS,
             "--metrics", str(target), "--metrics-format", "json"]
        ) == 0
        snap = json.loads(target.read_text())
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)
        assert "repro_io_rows_parsed_total" in names

    def test_no_flag_no_export(self, csv_trace, capsys):
        assert main(
            ["--seed", "1", "stream", csv_trace, *_ARGS]
        ) == 0
        assert "# HELP" not in capsys.readouterr().out


class TestFleetMetrics:
    def test_per_pipeline_labels_in_prometheus(
        self, csv_trace, tmp_path, capsys
    ):
        target = tmp_path / "fleet.prom"
        assert main(
            ["--seed", "1", "fleet", csv_trace, *_ARGS,
             "--pipelines", "2", "--metrics", str(target)]
        ) == 0
        text = target.read_text()
        types = _prometheus_schema_check(text)
        assert types["repro_fleet_routed_rows_total"] == "counter"
        assert 'pipeline="link0"' in text
        assert 'pipeline="link1"' in text
        # Throughput, late-drop, and stage-timing metrics all present
        # (the acceptance criterion's catalog).
        assert "repro_flows_processed_total" in types
        assert "repro_assembler_late_dropped_total" in types
        assert "repro_stage_seconds" in types

    def test_fleet_conservation_from_cli(self, csv_trace, tmp_path):
        target = tmp_path / "fleet.json"
        assert main(
            ["--seed", "1", "fleet", csv_trace, *_ARGS,
             "--pipelines", "2", "--metrics", str(target),
             "--metrics-format", "json"]
        ) == 0
        snap = json.loads(target.read_text())
        by_name = {m["name"]: m for m in snap["metrics"]}
        fed = by_name["repro_fleet_fed_rows_total"]["samples"][0]["value"]
        routed = sum(
            s["value"]
            for s in by_name["repro_fleet_routed_rows_total"]["samples"]
        )
        assert fed == routed > 0


class TestExtractMetrics:
    def test_extract_exports_metrics(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        main(
            ["generate", "--intervals", "4", "--flows-per-interval", "200",
             "--out", str(out)]
        )
        capsys.readouterr()
        target = tmp_path / "metrics.prom"
        assert main(
            ["extract", str(out), "--bins", "64", "--training", "3",
             "--min-support", "50", "--metrics", str(target)]
        ) == 0
        types = _prometheus_schema_check(target.read_text())
        assert "repro_intervals_processed_total" in types
