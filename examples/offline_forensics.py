#!/usr/bin/env python3
"""Offline (post-mortem) anomaly extraction - the Table II workflow.

The paper's offline mode: an administrator has a flagged interval and
the meta-data of the alarm, and re-runs extraction by hand, adjusting
the minimum support in 2-3 trials (Section II-E: a suitable s is
typically 1-10% of the input flows; start high, lower it until enough
item-sets appear, rank by frequency).

This example rebuilds the Table II interval - flooding on dstPort 7000
plus the three most popular ports injected as FP pressure - and walks
the support schedule, printing the report the operator reads and how
the triage heuristic separates the flooding from the proxies.

Run:
    python examples/offline_forensics.py
"""

import numpy as np

from repro.analysis import judge_itemsets
from repro.core import (
    AnomalyExtractor,
    ExtractionConfig,
    render_itemset_table,
    suggest_min_support,
    triage_all,
)
from repro.detection import Feature, Metadata
from repro.traffic import table2_interval


def main() -> None:
    scenario = table2_interval(scale=0.1, seed=42)
    flows = scenario.flows
    print(
        f"flagged interval (Table II at scale {scenario.scale}): "
        f"{len(flows)} flows"
    )
    for name, count in scenario.component_counts.items():
        print(f"  {name}: {count}")

    # The alarm's meta-data: dstPort 7000 was the only flagged value;
    # ports 80/9022/25 were added by hand in the paper to force FPs.
    metadata = Metadata()
    metadata.add(
        Feature.DST_PORT, np.array([7000, 80, 9022, 25], dtype=np.uint64)
    )

    extractor = AnomalyExtractor(ExtractionConfig(min_support=1), seed=0)
    start = suggest_min_support(len(flows), fraction=0.03)
    print(f"\nsupport schedule starting at 3% of input = {start} flows")

    for trial, support in enumerate((start, start // 2, start // 4), 1):
        result = extractor.extract_with_metadata(
            flows, metadata, min_support=support
        )
        print(f"\ntrial {trial}: min support {support} -> "
              f"{len(result.itemsets)} maximal item-sets")
        print(render_itemset_table(result.itemsets[:12]))
        if len(result.itemsets) >= 8:
            break

    # Final scoring against ground truth, as the analysts did manually.
    score = judge_itemsets(result.itemsets, flows)
    suspicious = [t for t in triage_all(result.itemsets) if not t.looks_benign]
    print(
        f"\nground truth: {score.true_positives} TP / "
        f"{score.false_positives} FP item-sets; triage keeps "
        f"{len(suspicious)} for investigation "
        f"(events covered: {score.events_covered})"
    )


if __name__ == "__main__":
    main()
