#!/usr/bin/env python3
"""The Sasser walkthrough: why the prefilter takes the UNION of meta-data.

Section II-A of the paper argues with the Sasser worm: it propagates in
three flow-disjoint stages (SYN scan on 445, backdoor connections on
9996, ~16 kB payload download), so meta-data describing the stages never
co-occurs in one flow - the intersection of matching flows is (nearly)
empty while the union captures the whole outbreak.

This example reproduces that argument end to end on a synthetic
outbreak and then mines the union to show all three stages surfacing as
item-sets.

Run:
    python examples/sasser_worm.py
"""

import numpy as np

from repro.anomalies.worm import (
    SASSER_BACKDOOR_PORT,
    SASSER_FTP_PORT,
    SASSER_PAYLOAD_BYTES,
    SASSER_SCAN_PORT,
)
from repro.core import prefilter, render_itemset_table
from repro.detection import Feature, Metadata
from repro.flows import interval_of
from repro.mining import TransactionSet, apriori
from repro.traffic import worm_outbreak_trace


def main() -> None:
    trace = worm_outbreak_trace(flows_per_interval=3_000, seed=23)
    outbreak = interval_of(trace.flows, 8, 900.0, origin=0.0)
    print(f"outbreak interval: {len(outbreak.flows)} flows, "
          f"{int(outbreak.flows.anomalous_mask.sum())} of them worm flows")
    print(trace.events[0].description)

    # The meta-data a detector bank reports: the three stage ports (from
    # the dstPort histogram) and the fixed payload size (from the flow
    # size histogram).  Crucially these never appear in the same flow.
    metadata = Metadata()
    metadata.add(
        Feature.DST_PORT,
        np.array([SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT],
                 dtype=np.uint64),
    )
    metadata.add(
        Feature.BYTES, np.array([SASSER_PAYLOAD_BYTES], dtype=np.uint64)
    )

    for mode in ("union", "intersection"):
        kept = prefilter(outbreak.flows, metadata, mode)
        worm_kept = int(kept.flows.anomalous_mask.sum())
        total_worm = int(outbreak.flows.anomalous_mask.sum())
        ports = sorted(
            set(np.unique(kept.flows.dst_port).tolist())
            & {SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT}
        )
        print(
            f"\n{mode:12s}: kept {kept.selected_flows:5d} flows; "
            f"worm recall {worm_kept}/{total_worm} "
            f"({worm_kept / total_worm:.0%}); stage ports visible: {ports}"
        )

    # Mine the union: every stage becomes an item-set the operator can
    # read off.
    union = prefilter(outbreak.flows, metadata, "union")
    result = apriori(TransactionSet.from_flows(union.flows), min_support=400)
    print("\nmodified Apriori on the union (min support 400):")
    print(render_itemset_table(result.itemsets))
    print(
        "\nConclusion: the intersection loses the scan and backdoor "
        "stages entirely; the union keeps the full outbreak and the "
        "item-sets name each stage - the paper's core design argument."
    )


if __name__ == "__main__":
    main()
