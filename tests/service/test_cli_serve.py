"""The ``serve`` subcommand and the ``api.serve`` facade verb."""

from __future__ import annotations

import io
import json
import os
import re
import signal
import socket
import threading
import time
import urllib.request

from repro.cli import build_parser, main


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestParser:
    def test_serve_flags(self):
        args = build_parser().parse_args([
            "serve", "--resume", "--port", "0", "--ingest-port", "0",
            "--checkpoint", "x.ckpt", "--checkpoint-every", "3",
            "--pipelines", "2", "--route", "dst_ip%2",
            "--store-dir", "stores",
        ])
        assert args.resume is True
        assert args.port == 0
        assert args.checkpoint == "x.ckpt"
        assert args.checkpoint_every == 3
        # only overrides [service] checkpoint_sync when passed
        assert args.checkpoint_sync is None

    def test_checkpoint_sync_flag(self):
        args = build_parser().parse_args(
            ["serve", "--checkpoint-sync", "--pipelines", "1"]
        )
        assert args.checkpoint_sync is True


class TestErrorPaths:
    def test_resume_without_checkpoint_path(self, capsys):
        code = main(["serve", "--resume", "--pipelines", "1"])
        assert code == 2
        assert "checkpoint_path" in capsys.readouterr().err

    def test_existing_checkpoint_demands_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "fleet.ckpt"
        ckpt.write_text("{}")
        code = main([
            "serve", "--pipelines", "1",
            "--store-dir", str(tmp_path / "stores"),
            "--checkpoint", str(ckpt),
        ])
        assert code == 2
        assert "pass --resume" in capsys.readouterr().err

    def test_bad_service_key_gets_hint(self, tmp_path, capsys):
        config = tmp_path / "fleet.toml"
        config.write_text("[service]\nprt = 8181\n")
        code = main(["serve", "--config", str(config)])
        assert code == 2
        err = capsys.readouterr().err
        assert str(config) in err
        assert "port" in err  # the did-you-mean hint

    def test_non_boolean_checkpoint_sync_rejected(
        self, tmp_path, capsys
    ):
        config = tmp_path / "fleet.toml"
        config.write_text("[service]\ncheckpoint_sync = 8\n")
        code = main(["serve", "--config", str(config)])
        assert code == 2
        assert "checkpoint_sync must be a boolean" in (
            capsys.readouterr().err
        )

    def test_pipelines_flag_conflicts_with_config_sections(
        self, tmp_path, capsys
    ):
        config = tmp_path / "fleet.toml"
        config.write_text("[fleet.pipelines.linkA]\n")
        code = main([
            "serve", "--config", str(config), "--pipelines", "2"
        ])
        assert code == 2
        assert "one place" in capsys.readouterr().err


class TestServeEndToEnd:
    def test_daemon_serves_then_drains_on_sigterm(
        self, service_chunks, tmp_path
    ):
        """Whole stack through main(): config resolution, fleet build,
        listeners, ingest, SIGTERM drain with final checkpoint."""
        from repro.flows.io import write_csv

        port = free_port()
        ckpt = tmp_path / "fleet.ckpt"
        chunk_path = tmp_path / "chunk.csv"
        write_csv(service_chunks[0], str(chunk_path))
        failures: list[str] = []

        def client():
            body = chunk_path.read_bytes()
            deadline = time.monotonic() + 15
            try:
                while time.monotonic() < deadline:
                    try:
                        request = urllib.request.Request(
                            f"http://127.0.0.1:{port}/ingest",
                            data=body, method="POST",
                        )
                        with urllib.request.urlopen(
                            request, timeout=5
                        ) as response:
                            payload = json.loads(response.read())
                        if payload["sequence"] != 1:
                            failures.append(f"bad ack: {payload}")
                        return
                    except OSError:
                        time.sleep(0.05)
                failures.append("daemon never accepted the ingest")
            finally:
                os.kill(os.getpid(), signal.SIGTERM)

        thread = threading.Thread(target=client)
        thread.start()
        try:
            code = main([
                "serve",
                "--training", "3", "--min-support", "40",
                "--pipelines", "2", "--route", "dst_ip%2",
                "--store-dir", str(tmp_path / "stores"),
                "--checkpoint", str(ckpt),
                "--checkpoint-every", "100",
                "--port", str(port),
            ])
        finally:
            thread.join(timeout=15)
        assert failures == []
        assert code == 0
        # The SIGTERM drain wrote the final checkpoint.
        from repro.service.checkpoint import read_checkpoint

        assert read_checkpoint(ckpt)["sequence"] == 1


class TestApiServe:
    def test_facade_verb_round_trip(self, service_chunks, tmp_path):
        import repro.api as repro
        from repro.flows.io import write_csv

        chunk_path = tmp_path / "chunk.csv"
        write_csv(service_chunks[0], str(chunk_path))
        log = io.StringIO()
        failures: list[str] = []

        def client():
            deadline = time.monotonic() + 15
            port = None
            while time.monotonic() < deadline:
                match = re.search(r":(\d+)$", log.getvalue().strip())
                if match:
                    port = int(match.group(1))
                    break
                time.sleep(0.05)
            try:
                if port is None:
                    failures.append("no announcement")
                    return
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/ingest",
                    data=chunk_path.read_bytes(), method="POST",
                )
                with urllib.request.urlopen(
                    request, timeout=5
                ) as response:
                    if response.status != 200:
                        failures.append(f"status {response.status}")
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5
                ) as response:
                    health = json.loads(response.read())
                if health["sequence"] != 1:
                    failures.append(f"bad health: {health}")
            finally:
                os.kill(os.getpid(), signal.SIGTERM)

        thread = threading.Thread(target=client)
        thread.start()
        try:
            repro.serve(
                pipelines=2,
                route="dst_ip%2",
                port=0,
                min_support=40,
                log=log,
            )
        finally:
            thread.join(timeout=15)
        assert failures == []
        assert log.getvalue().startswith("serving http://127.0.0.1:")
