"""Fixture: direct subscripting silenced by noqa comments."""

from repro.mining import MINERS
from repro.registry import readers


def lookup(name):
    miner = MINERS[name]  # repro: noqa[RPR003]
    reader = readers[name]  # repro: noqa
    return miner, reader
