"""Shared federation fixtures: one DDoS trace split across two PoPs.

The subsystem's contract is *equivalence*: detection over merged
digests must match a single detector bank fed the concatenated trace
(exactly, for the clone snapshots).  Every module here therefore works
from the same split of the session ``ddos_trace`` plus the same
single-bank ground truth, so the comparisons are byte-for-byte
meaningful.
"""

from __future__ import annotations

import pytest

from repro.detection.detector import DetectorConfig
from repro.detection.manager import DetectorBank
from repro.federation import Collector, Federator, split_trace
from repro.flows.stream import iter_intervals

#: Short training window so the 30-interval session trace has alarmed
#: intervals left to federate.
TRAINING_INTERVALS = 16
BINS = 256
#: Narrow count-min keeps digests small; eps = e/512 of an interval's
#: flow count still separates the planted attack from the noise floor.
CM_WIDTH = 512
CM_DEPTH = 4
SITES = ("east", "west")
MIN_SUPPORT = 300
INTERVAL_SECONDS = 900.0
ATTACK_INTERVAL = 24


@pytest.fixture(scope="session")
def fed_config():
    return DetectorConfig(training_intervals=TRAINING_INTERVALS, bins=BINS)


@pytest.fixture(scope="session")
def site_flows(ddos_trace):
    """The DDoS trace split as if two PoPs had captured it."""
    return split_trace(ddos_trace.flows, SITES, "dst_ip%2")


@pytest.fixture(scope="session")
def collector_factory(fed_config):
    """Collectors pre-wired to the federation's shared schema."""

    def make(site: str, **kwargs) -> Collector:
        defaults = dict(
            config=fed_config, seed=0, cm_width=CM_WIDTH, cm_depth=CM_DEPTH
        )
        defaults.update(kwargs)
        return Collector(site=site, **defaults)

    return make


@pytest.fixture(scope="session")
def federator_factory(fed_config):
    """Federators pre-wired to the same schema as the collectors."""

    def make(**kwargs) -> Federator:
        defaults = dict(
            sites=SITES,
            config=fed_config,
            seed=0,
            cm_width=CM_WIDTH,
            cm_depth=CM_DEPTH,
            interval_seconds=INTERVAL_SECONDS,
            min_support=MIN_SUPPORT,
        )
        defaults.update(kwargs)
        return Federator(**defaults)

    return make


@pytest.fixture(scope="session")
def site_digests(site_flows, collector_factory):
    """Each site's 30 interval digests (snapshots are immutable, so
    sharing one set across tests is safe)."""
    return {
        site: collector_factory(site).run(
            flows, INTERVAL_SECONDS, origin=0.0
        )
        for site, flows in site_flows.items()
    }


@pytest.fixture(scope="session")
def attack_flows(ddos_trace):
    """The concatenated flows of the DDoS interval."""
    for view in iter_intervals(
        ddos_trace.flows, INTERVAL_SECONDS, origin=0.0
    ):
        if view.index == ATTACK_INTERVAL:
            return view.flows
    raise AssertionError("trace lost its attack interval")


@pytest.fixture(scope="session")
def local_run(ddos_trace, fed_config):
    """Single-bank ground truth over the concatenated trace: the bank
    (for state comparison) and its detection run (for alarms)."""
    bank = DetectorBank(fed_config, seed=0)
    run = bank.run(ddos_trace.flows, INTERVAL_SECONDS, origin=0.0)
    return bank, run
