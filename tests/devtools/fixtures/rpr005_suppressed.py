"""Fixture: unlocked mutations silenced by noqa comments."""

import threading


class Accumulator:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._history = []

    def add(self, value):
        self._total += value  # repro: noqa[RPR005]

    def reset(self):
        self._history = []  # repro: noqa
