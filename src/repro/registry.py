"""Pluggable extension registries.

The paper's pipeline (detect -> prefilter -> mine -> triage) is
deliberately modular - Brauckhoff et al. swap detectors and miners in
their evaluation - so every extension point of this implementation
resolves through a named :class:`Registry` instead of a hard-coded
table:

* :data:`miners` - frequent item-set miners
  (``miner(transactions, min_support, maximal_only=True, **kw)``);
* :data:`feature_sets` - named tuples of detector features for
  :class:`~repro.detection.manager.DetectorBank`;
* :data:`readers` - trace readers keyed by file extension
  (``reader(path) -> FlowTable``);
* :data:`sinks` - report sink factories (see :mod:`repro.sinks`);
* :data:`routers` - fleet record routers (see
  :mod:`repro.fleet.routing`).

Third-party packages can plug in without touching ``repro`` internals,
either at runtime::

    from repro.registry import miners

    @miners.register("mymine")
    def mymine(transactions, min_support, maximal_only=True, **kw):
        ...

or declaratively through ``importlib.metadata`` entry points, which are
discovered lazily on first lookup::

    # pyproject.toml of a plugin package
    [project.entry-points."repro.miners"]
    mymine = "myplugin.mining:mymine"

Entry-point groups: ``repro.miners``, ``repro.detectors``,
``repro.readers``, ``repro.sinks``, ``repro.routers``.
"""

from __future__ import annotations

import difflib
import importlib
import importlib.metadata
from collections.abc import Callable, Iterator, Mapping
from typing import Any, TypeVar

from repro.errors import RegistryError

T = TypeVar("T")


class Registry(Mapping):
    """A named table of extension objects with entry-point discovery.

    Implements the read side of the :class:`Mapping` protocol, so
    legacy dict-style access (``MINERS["apriori"]``, ``name in MINERS``,
    ``sorted(MINERS)``) keeps working on migrated extension points.

    Args:
        kind: human label used in error messages ("miner", ...).
        entry_point_group: ``importlib.metadata`` group scanned lazily
            for third-party entries (``None`` = no discovery).
        bootstrap: dotted module imported before the first lookup so the
            built-ins register themselves even when the registry module
            is imported on its own.
    """

    def __init__(
        self,
        kind: str,
        entry_point_group: str | None = None,
        bootstrap: str | None = None,
    ):
        self.kind = kind
        self.entry_point_group = entry_point_group
        self._bootstrap = bootstrap
        self._bootstrapped = bootstrap is None
        self._entries: dict[str, Any] = {}
        self._entry_points: dict[str, importlib.metadata.EntryPoint] | None = (
            None
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        obj: T | None = None,
        *,
        replace: bool = False,
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator.

        Duplicate names are rejected unless ``replace=True`` - silently
        shadowing an existing extension is almost always a bug.
        """
        if not name or not isinstance(name, str):
            raise RegistryError(
                f"{self.kind} name must be a non-empty string: {name!r}"
            )
        if obj is None:
            def decorator(target: T) -> T:
                self.register(name, target, replace=replace)
                return target

            return decorator
        self._ensure_bootstrapped()
        if not replace and name in self._entries:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; pass "
                f"replace=True to shadow it"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove a runtime registration (entry points are unaffected)."""
        self._ensure_bootstrapped()
        if name not in self._entries:
            raise RegistryError(self._unknown_message(name))
        del self._entries[name]

    def __setitem__(self, name: str, obj: Any) -> None:
        # Legacy dict-style registration keeps dict semantics: a plain
        # assignment always overwrites.
        self.register(name, obj, replace=True)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str, default: Any = ...) -> Any:
        """Resolve ``name``: runtime registrations first, then lazily
        loaded entry points.  Unknown names raise :class:`RegistryError`
        listing the valid choices (with a did-you-mean hint); pass
        ``default`` to suppress that, mirroring ``dict.get``.
        """
        self._ensure_bootstrapped()
        if name in self._entries:
            return self._entries[name]
        entry_point = self._discovered().get(name)
        if entry_point is not None:
            try:
                obj = entry_point.load()
            except Exception as exc:
                raise RegistryError(
                    f"{self.kind} entry point {name!r} "
                    f"({entry_point.value}) failed to load: {exc}"
                ) from exc
            # Cache so each entry point loads once per process.
            self._entries[name] = obj
            return obj
        if default is not ...:
            return default
        raise RegistryError(self._unknown_message(name))

    def names(self) -> list[str]:
        """Sorted names of every resolvable entry (runtime + entry
        points, the latter unloaded)."""
        self._ensure_bootstrapped()
        return sorted(set(self._entries) | set(self._discovered()))

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        self._ensure_bootstrapped()
        return name in self._entries or name in self._discovered()

    def __repr__(self) -> str:
        return (
            f"Registry({self.kind!r}, group={self.entry_point_group!r}, "
            f"entries={self.names()})"
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Forget the cached entry-point scan (next lookup re-scans);
        runtime registrations are kept."""
        self._entry_points = None

    def _discovered(self) -> dict[str, importlib.metadata.EntryPoint]:
        if self.entry_point_group is None:
            return {}
        if self._entry_points is None:
            self._entry_points = {
                ep.name: ep
                for ep in importlib.metadata.entry_points(
                    group=self.entry_point_group
                )
            }
        return self._entry_points

    def _ensure_bootstrapped(self) -> None:
        if not self._bootstrapped:
            # Flip first: the bootstrap module registers into this very
            # registry while it imports.
            self._bootstrapped = True
            importlib.import_module(self._bootstrap)

    def _unknown_message(self, name: str) -> str:
        names = self.names()
        hint = ""
        close = difflib.get_close_matches(name, names, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        choices = ", ".join(names) if names else "none registered"
        return (
            f"unknown {self.kind} {name!r}{hint}; "
            f"available: {choices}"
        )


#: Frequent item-set miners: ``miner(transactions, min_support,
#: maximal_only=True, **kw) -> MiningResult``.  Built-ins (apriori,
#: fpgrowth, eclat, son) register in :mod:`repro.mining`.
miners = Registry("miner", "repro.miners", bootstrap="repro.mining")

#: Named detector feature sets: tuples of
#: :class:`~repro.detection.features.Feature` (or duck-compatible
#: custom features).  Built-ins register in
#: :mod:`repro.detection.features`.
feature_sets = Registry(
    "feature set", "repro.detectors", bootstrap="repro.detection.features"
)

#: Trace readers keyed by file extension (".csv", ".npz"):
#: ``reader(path) -> FlowTable``.  Built-ins register in
#: :mod:`repro.flows.io`.
readers = Registry("trace reader", "repro.readers", bootstrap="repro.flows.io")

#: Report sink factories (see :mod:`repro.sinks` for the built-ins and
#: the :class:`~repro.core.pipeline.ReportSink` contract).
sinks = Registry("report sink", "repro.sinks", bootstrap="repro.sinks")

#: Fleet record-router factories:
#: ``factory(arg: str | None, n_pipelines: int) -> router`` where
#: ``router(table) -> ndarray`` maps each row to a pipeline index (see
#: :mod:`repro.fleet.routing` for the built-ins and the spec grammar).
routers = Registry(
    "fleet router", "repro.routers", bootstrap="repro.fleet.routing"
)

__all__ = [
    "Registry", "miners", "feature_sets", "readers", "sinks", "routers",
]
