"""Section III-E: computational overhead of frequent item-set mining.

Paper: mining is the most demanding step; cost grows with the number of
transactions and of frequent 1-item-sets; FP-tree implementations
outperform hash-tree Apriori; their unoptimized Python Apriori took up
to 5 minutes per interval on a 2005-era Opteron.  We benchmark all three
miners on the Table II workload at increasing sizes and check the
relative ordering and growth trends.
"""

import time

import pytest

from repro.mining.apriori import apriori
from repro.mining.eclat import eclat
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import TransactionSet
from repro.traffic.scenarios import table2_interval

MINERS = {"apriori": apriori, "fpgrowth": fpgrowth, "eclat": eclat}


@pytest.fixture(scope="module")
def workload():
    scenario = table2_interval(scale=0.1, seed=42)
    return TransactionSet.from_flows(scenario.flows), scenario.min_support


@pytest.mark.parametrize("miner_name", list(MINERS))
def test_miner_throughput(benchmark, workload, miner_name):
    """Per-miner timing on the 35k-flow Table II interval (grouped in
    the pytest-benchmark table for direct comparison)."""
    transactions, min_support = workload
    miner = MINERS[miner_name]
    result = benchmark.pedantic(
        miner, args=(transactions, min_support), rounds=3, iterations=1
    )
    assert result.itemsets  # sanity: the workload yields item-sets


def test_mining_cost_grows_with_input(benchmark, report):
    """Growth trend: transactions up 4x -> super-constant runtime; also
    the relative-support effect the paper notes (lower s = more work)."""

    def measure():
        timings = {}
        for scale in (0.025, 0.05, 0.1):
            scenario = table2_interval(scale=scale, seed=42)
            transactions = TransactionSet.from_flows(scenario.flows)
            start = time.perf_counter()
            apriori(transactions, scenario.min_support)
            timings[scale] = time.perf_counter() - start
        # Lower minimum support on the largest input.
        scenario = table2_interval(scale=0.1, seed=42)
        transactions = TransactionSet.from_flows(scenario.flows)
        start = time.perf_counter()
        low_support = apriori(transactions, scenario.min_support // 4)
        timings["low_s"] = time.perf_counter() - start
        return timings, len(low_support.all_frequent)

    (timings, low_s_frequent) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    report(
        "",
        "Section III-E - mining overhead "
        "(paper: <= 5 min/interval, unoptimized Python, 2005 Opteron)",
        "  apriori runtime by input scale: "
        + ", ".join(
            f"{scale}: {timings[scale] * 1000:.0f} ms"
            for scale in (0.025, 0.05, 0.1)
        ),
        f"  low-support run (s/4) on the 0.1-scale input: "
        f"{timings['low_s'] * 1000:.0f} ms, "
        f"{low_s_frequent} frequent item-sets",
    )
    # Larger inputs cost more.
    assert timings[0.1] > timings[0.025]
    # Lower support costs more than the default on the same input.
    assert timings["low_s"] >= timings[0.1] * 0.8
