"""Fixture: shared state mutated outside the lock."""

import threading


class Accumulator:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._history = []

    def add(self, value):
        self._total += value

    def reset(self):
        with self._lock:
            self._total = 0
        self._history = []
