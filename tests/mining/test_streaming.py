"""Unit tests for the sliding-window miner."""

import numpy as np
import pytest

from repro.errors import MiningError
from repro.flows.table import FlowTable
from repro.mining.streaming import SlidingWindowMiner
from repro.mining.transactions import TransactionSet
from repro.mining.eclat import eclat


def _batch(dst_port, n=100, seed=0):
    rng = np.random.default_rng(seed)
    return FlowTable.from_arrays(
        src_ip=rng.integers(0, 2**31, n),
        dst_ip=rng.integers(0, 2**31, n),
        src_port=rng.integers(1024, 65536, n),
        dst_port=np.full(n, dst_port),
        protocol=[6] * n,
        packets=[1] * n,
        bytes_=[40] * n,
    )


class TestSlidingWindowMiner:
    def test_not_ready_until_window_full(self):
        miner = SlidingWindowMiner(window=3, min_support=10)
        miner.push(_batch(80))
        assert not miner.ready
        miner.push(_batch(80, seed=1))
        miner.push(_batch(80, seed=2))
        assert miner.ready

    def test_window_eviction(self):
        miner = SlidingWindowMiner(window=2, min_support=150)
        miner.push(_batch(7000, seed=0))  # the anomaly...
        miner.push(_batch(80, seed=1))
        miner.push(_batch(80, seed=2))    # ...slides out here
        result = miner.mine()
        ports = {
            s.as_dict().get(list(s.as_dict())[0])
            for s in result.itemsets
        }
        assert miner.flows_in_window == 200
        # Port 7000 no longer reaches support 150 inside the window.
        from repro.detection.features import Feature

        port_values = {
            s.as_dict().get(Feature.DST_PORT) for s in result.itemsets
        }
        assert 7000 not in port_values
        assert 80 in port_values

    def test_mine_matches_batch_concat(self):
        miner = SlidingWindowMiner(window=2, min_support=50)
        batches = [_batch(80, seed=0), _batch(443, seed=1)]
        for batch in batches:
            miner.push(batch)
        direct = eclat(
            TransactionSet.from_flows(FlowTable.concat(batches)), 50
        )
        assert miner.mine().all_frequent == direct.all_frequent

    def test_incremental_counts_survive_eviction(self):
        miner = SlidingWindowMiner(window=2, min_support=120)
        for seed in range(6):
            miner.push(_batch(80, seed=seed))
        # Window holds 200 flows of port 80.
        assert miner.frequent_item_count() > 0
        assert miner.flows_in_window == 200

    def test_screen_skips_quiet_windows(self):
        miner = SlidingWindowMiner(window=2, min_support=10_000)
        miner.push(_batch(80, seed=0))
        miner.push(_batch(80, seed=1))
        assert miner.frequent_item_count() == 0
        assert miner.mine_if_candidates() is None

    def test_screen_triggers_on_burst(self):
        miner = SlidingWindowMiner(window=2, min_support=150)
        miner.push(_batch(7000, seed=0))
        miner.push(_batch(7000, seed=1))
        result = miner.mine_if_candidates()
        assert result is not None
        assert result.itemsets

    def test_mine_before_push_rejected(self):
        miner = SlidingWindowMiner(window=2, min_support=10)
        with pytest.raises(MiningError):
            miner.mine()

    def test_validation(self):
        with pytest.raises(MiningError):
            SlidingWindowMiner(window=0, min_support=10)
        with pytest.raises(MiningError):
            SlidingWindowMiner(window=1, min_support=0)
