"""Fig. 5: iterative identification of anomalous bins.

Paper: the cleaning simulation resets, per round, the bin with the
largest absolute difference; the KL distance converges toward zero and
"already after the first round, the KL distance decreases
significantly".  We drive the algorithm with a flooding interval and
print the per-round KL trace.
"""

import numpy as np

from repro.anomalies import FloodingInjector
from repro.detection.binid import identify_anomalous_bins
from repro.detection.threshold import AlarmThreshold
from repro.sketch.hashing import HashFamily
from repro.traffic import TraceGenerator, switch_like


def _histograms():
    """Clean reference, clean previous-KL baseline, and flooded current
    dstIP histograms.

    The detector's alert condition is on the KL *first difference*, so
    the cleaning simulation targets the previous interval's KL level -
    the natural noise floor between two clean intervals - rather than
    zero.
    """
    profile = switch_like(20_000)
    generator = TraceGenerator(profile, seed=13)
    clean0 = generator.generate_interval(index=0, flow_count=20_000)
    clean1 = generator.generate_interval(index=1, flow_count=20_000)
    current_base = generator.generate_interval(index=2, flow_count=20_000)
    flood = FloodingInjector(
        victim_ip=profile.internal_base + 42,
        attacker_ips=[0x0C000001, 0x0C000002, 0x0C000003],
        target_port=7000,
        flows=5_000,
    ).generate(np.random.default_rng(4), 900.0, 900.0, label=0)

    hash_fn = HashFamily(bins=1024, seed=2).fresh()

    def hist(values):
        counts = np.zeros(1024)
        np.add.at(counts, hash_fn.hash_array(values), 1.0)
        return counts

    from repro.detection.kl import kl_from_counts

    reference = hist(clean1.dst_ip)
    previous_kl = kl_from_counts(reference, hist(clean0.dst_ip))
    current = hist(np.concatenate([current_base.dst_ip, flood.dst_ip]))
    victim_bin = hash_fn(profile.internal_base + 42)
    return current, reference, previous_kl, victim_bin


def test_fig5_iterative_cleaning(benchmark, report):
    current, reference, previous_kl, victim_bin = _histograms()
    threshold = AlarmThreshold(sigma=0.005, multiplier=4.0)

    result = benchmark(
        identify_anomalous_bins, current, reference, threshold, previous_kl
    )

    trace = np.array(result.kl_trace)
    drops = -np.diff(trace)
    report(
        "",
        "Fig. 5 - iterative anomalous-bin identification "
        "(flooding of one victim, m=1024)",
        f"  previous-interval KL (noise floor): {previous_kl:.4f}; "
        f"alert target: {previous_kl + threshold.value:.4f}",
        f"  rounds: {result.rounds}; KL per round: "
        + " -> ".join(f"{v:.4f}" for v in trace),
        f"  first-round drop: {drops[0]:.4f} "
        f"({100 * drops[0] / (trace[0] - trace[-1]):.0f}% of total)",
        f"  victim's bin identified first: "
        f"{result.bins[0] == victim_bin}",
    )

    assert result.converged
    assert result.bins[0] == victim_bin
    # Convergence is fast: a concentrated anomaly needs few rounds.
    assert result.rounds <= 10
    # The Fig. 5 shape: the first round removes most of the distance
    # (tiny non-monotonic wiggles from renormalization are tolerated).
    assert drops[0] == drops.max()
    assert drops[0] > 0.9 * (trace[0] - trace[-1])
    assert (np.diff(trace) <= 1e-3).all()
