"""Unit tests for interval windowing."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flows.stream import (
    interval_index,
    interval_of,
    iter_intervals,
    split_intervals,
)
from repro.flows.table import FlowTable


def _table_with_starts(starts):
    n = len(starts)
    return FlowTable.from_arrays(
        [1] * n, [2] * n, [3] * n, [4] * n, [6] * n, [1] * n, [40] * n,
        start=starts,
    )


class TestIntervalIndex:
    def test_basic_mapping(self):
        idx = interval_index(np.array([0.0, 899.9, 900.0, 1800.0]), 0.0, 900.0)
        assert list(idx) == [0, 0, 1, 2]

    def test_origin_shift(self):
        idx = interval_index(np.array([1000.0]), 1000.0, 900.0)
        assert idx[0] == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            interval_index(np.array([1.0]), 0.0, 0.0)


class TestIterIntervals:
    def test_flows_assigned_to_correct_windows(self):
        table = _table_with_starts([0.0, 100.0, 950.0, 1850.0])
        views = split_intervals(table, 900.0)
        assert [len(v) for v in views] == [2, 1, 1]
        assert [v.index for v in views] == [0, 1, 2]

    def test_empty_intervals_included_by_default(self):
        table = _table_with_starts([0.0, 2000.0])
        views = split_intervals(table, 900.0)
        assert [len(v) for v in views] == [1, 0, 1]

    def test_empty_intervals_can_be_skipped(self):
        table = _table_with_starts([0.0, 2000.0])
        views = list(iter_intervals(table, 900.0, include_empty=False))
        assert [v.index for v in views] == [0, 2]

    def test_window_boundaries(self):
        table = _table_with_starts([0.0, 900.0])
        views = split_intervals(table, 900.0, origin=0.0)
        assert views[0].start == 0.0 and views[0].end == 900.0
        assert views[1].start == 900.0
        assert views[0].duration == 900.0

    def test_boundary_flow_goes_to_next_interval(self):
        table = _table_with_starts([900.0])
        views = split_intervals(table, 900.0, origin=0.0)
        assert [len(v) for v in views] == [0, 1]

    def test_empty_trace_yields_nothing(self):
        assert split_intervals(FlowTable.empty(), 900.0) == []

    def test_origin_after_first_flow_rejected(self):
        table = _table_with_starts([0.0, 100.0])
        with pytest.raises(ConfigError, match="origin"):
            split_intervals(table, 900.0, origin=50.0)

    def test_bad_interval_length_rejected(self):
        table = _table_with_starts([0.0])
        with pytest.raises(ConfigError):
            split_intervals(table, -1.0)

    def test_unsorted_input_handled(self):
        table = _table_with_starts([1850.0, 0.0, 950.0])
        views = split_intervals(table, 900.0)
        assert [len(v) for v in views] == [1, 1, 1]

    def test_all_flows_covered_exactly_once(self, rng):
        starts = rng.uniform(0, 10 * 900.0, size=500)
        table = _table_with_starts(list(starts))
        views = split_intervals(table, 900.0, origin=0.0)
        assert sum(len(v) for v in views) == 500


class TestIntervalOf:
    def test_single_interval_extraction(self):
        table = _table_with_starts([0.0, 950.0, 1000.0, 1850.0])
        view = interval_of(table, 1, 900.0, origin=0.0)
        assert len(view) == 2
        assert view.index == 1

    def test_matches_split(self):
        table = _table_with_starts([0.0, 950.0, 1000.0, 1850.0])
        views = split_intervals(table, 900.0, origin=0.0)
        solo = interval_of(table, 2, 900.0, origin=0.0)
        assert len(solo) == len(views[2])

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            interval_of(FlowTable.empty(), 0, 900.0)

    def test_negative_index_rejected(self):
        table = _table_with_starts([0.0, 950.0])
        with pytest.raises(ConfigError, match="index"):
            interval_of(table, -1, 900.0, origin=0.0)

    def test_bad_interval_length_rejected(self):
        table = _table_with_starts([0.0, 950.0])
        with pytest.raises(ConfigError, match="positive"):
            interval_of(table, 0, 0.0, origin=0.0)
        with pytest.raises(ConfigError, match="positive"):
            interval_of(table, 0, -900.0, origin=0.0)
