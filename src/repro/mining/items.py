"""Items and item-sets for association mining over flows.

Section II-B: each flow becomes a transaction of width seven, one item
per feature; an item is a (feature, value) pair such as
``dstPort = 80``.  We encode an item into a single int64 - feature tag
in the high bits, value in the low 48 - so the miners can work on numpy
matrices, and provide a decoded, human-readable
:class:`FrequentItemset` for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.features import MINING_FEATURES, Feature
from repro.errors import MiningError

#: Bit position of the feature tag inside an encoded item.
FEATURE_SHIFT = 48
#: Mask of the value bits.
VALUE_MASK = (1 << FEATURE_SHIFT) - 1

_FEATURE_INDEX = {feature: i for i, feature in enumerate(MINING_FEATURES)}


def encode_item(feature: Feature, value: int) -> int:
    """Pack a (feature, value) pair into one int64 item."""
    if value < 0 or value > VALUE_MASK:
        raise MiningError(
            f"feature value out of encodable range [0, 2^48): {value}"
        )
    return (_FEATURE_INDEX[feature] << FEATURE_SHIFT) | int(value)


def decode_item(item: int) -> tuple[Feature, int]:
    """Unpack an encoded item back into its (feature, value) pair."""
    index = int(item) >> FEATURE_SHIFT
    if not 0 <= index < len(MINING_FEATURES):
        raise MiningError(f"not an encoded item: {item}")
    return MINING_FEATURES[index], int(item) & VALUE_MASK


def item_feature(item: int) -> Feature:
    """The feature a packed item belongs to."""
    return decode_item(item)[0]


def format_item(item: int) -> str:
    """Human-readable "feature=value" rendering of an item."""
    feature, value = decode_item(item)
    return f"{feature.short_name}={feature.format_value(value)}"


@dataclass(frozen=True)
class FrequentItemset:
    """One mined item-set with its support count.

    ``items`` is the sorted tuple of encoded items; helper accessors
    decode them for presentation and ground-truth matching.
    """

    items: tuple[int, ...]
    support: int

    def __post_init__(self) -> None:
        if self.support < 0:
            raise MiningError(f"support must be >= 0: {self.support}")
        if len(self.items) == 0:
            raise MiningError("an item-set must contain at least one item")
        if tuple(sorted(self.items)) != self.items:
            raise MiningError("items must be stored sorted")
        features = [item_feature(item) for item in self.items]
        if len(set(features)) != len(features):
            raise MiningError(
                "a transaction cannot contain two items of one feature; "
                f"got {self.items}"
            )

    @property
    def size(self) -> int:
        """k of this k-item-set."""
        return len(self.items)

    def as_dict(self) -> dict[Feature, int]:
        """Decoded {feature: value} view."""
        return dict(decode_item(item) for item in self.items)

    def contains(self, other: "FrequentItemset") -> bool:
        """True when ``other``'s items are a subset of this item-set."""
        return set(other.items) <= set(self.items)

    def __str__(self) -> str:
        inner = ", ".join(format_item(item) for item in self.items)
        return f"{{{inner}}} (support={self.support})"


def itemsets_sorted(itemsets: list[FrequentItemset]) -> list[FrequentItemset]:
    """Canonical report order: support descending, then size descending,
    then lexicographic items for determinism."""
    return sorted(
        itemsets, key=lambda s: (-s.support, -s.size, s.items)
    )
