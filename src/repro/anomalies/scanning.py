"""Network scanning injector.

Horizontal scans sweep a destination port across many addresses with
identical single-packet probes, so the item-set signature is
``{srcIP, dstPort, #packets, #bytes}`` — exactly the "fixed flow length"
regularity Section III-D calls out for distributed scanning.
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyInjector, uniform_times
from repro.errors import ConfigError
from repro.flows.record import PROTO_TCP
from repro.flows.table import FlowTable


class ScanInjector(AnomalyInjector):
    """One (or a few) scanners probing a port across an address range."""

    kind = "scanning"

    def __init__(
        self,
        scanner_ips: list[int] | tuple[int, ...],
        target_port: int = 445,
        flows: int = 20_000,
        target_space_start: int = 0x823B0000,
        target_space_size: int = 65_536,
        probe_bytes: int = 48,
    ):
        if flows < 1:
            raise ConfigError(f"flows must be >= 1: {flows}")
        if not scanner_ips:
            raise ConfigError("scan needs at least one scanner")
        if target_space_size < 1:
            raise ConfigError("target space must be non-empty")
        self.scanner_ips = tuple(int(ip) for ip in scanner_ips)
        self.target_port = target_port
        self.flows = flows
        self.target_space_start = target_space_start
        self.target_space_size = target_space_size
        self.probe_bytes = probe_bytes

    def generate(
        self,
        rng: np.random.Generator,
        start: float,
        duration: float,
        label: int,
    ) -> FlowTable:
        self._check_generate_args(start, duration, label)
        n = self.flows
        scanners = np.asarray(self.scanner_ips, dtype=np.uint64)
        src = scanners[rng.integers(0, len(scanners), size=n)]
        # Sweep the target space; wrap around if flows > space size.
        sweep = (np.arange(n, dtype=np.uint64) % np.uint64(self.target_space_size))
        dst = np.uint64(self.target_space_start) + sweep
        times = np.sort(uniform_times(rng, n, start, duration))
        return FlowTable.from_arrays(
            src_ip=src,
            dst_ip=dst,
            src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
            dst_port=np.full(n, self.target_port, dtype=np.uint64),
            protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
            packets=np.ones(n, dtype=np.uint64),
            bytes_=np.full(n, self.probe_bytes, dtype=np.uint64),
            start=times,
            label=np.full(n, label, dtype=np.int64),
        )

    def describe(self) -> str:
        return (
            f"Scan: {len(self.scanner_ips)} scanner(s) sweeping "
            f"dstPort {self.target_port}, {self.flows} probes"
        )

    def signature(self) -> dict[str, int]:
        sig = {"dst_port": self.target_port, "packets": 1, "bytes": self.probe_bytes}
        if len(self.scanner_ips) == 1:
            sig["src_ip"] = self.scanner_ips[0]
        return sig
