"""Fig. 8: probability that a normal feature value survives voting.

Paper: gamma_V (equation (3)) against K for B=1 anomalous bin (a) and
B=3 (b), m=1024 bins.  Marked values: for V=K=3 and B=1 the survival
probability is (1/1024)^3 ~ 9e-10; it grows dramatically with B and
shrinks with V.  The expected number of false feature values is gamma_V
times the observed distinct values (up to 65 536 for ports).
"""

from repro.analysis.voting_model import (
    expected_normal_values,
    fig8_grid,
    p_normal_included,
    simulate_normal_inclusion,
)

M = 1024


def test_fig8_normal_value_survival(benchmark, report):
    grids = benchmark.pedantic(
        lambda: {b: fig8_grid(b, M, range(1, 26)) for b in (1, 3)},
        rounds=1,
        iterations=1,
    )

    exact_v3_b1 = p_normal_included(1, M, 3, 3)
    exact_v3_b3 = p_normal_included(3, M, 3, 3)
    exact_v1_b1 = p_normal_included(1, M, 3, 1)
    mc = simulate_normal_inclusion(8, 64, 4, 2, trials=300_000, seed=5)
    exact_mc = p_normal_included(8, 64, 4, 2)

    report(
        "",
        "Fig. 8 - P(normal value survives voting), m=1024",
        f"  (a) B=1: V=K=3 -> {exact_v3_b1:.2e} (paper: ~(1/1024)^3); "
        f"V=1,K=3 -> {exact_v1_b1:.2e}",
        f"  (b) B=3: V=K=3 -> {exact_v3_b3:.2e} "
        f"({exact_v3_b3 / exact_v3_b1:.0f}x higher than B=1)",
        f"  expected FP port values (B=1, V=K=3, 65536 ports): "
        f"{expected_normal_values(1, M, 3, 3, 65536):.2e}",
        f"  Monte-Carlo check (B=8, m=64, K=4, V=2): "
        f"{mc:.4f} vs analytic {exact_mc:.4f}",
    )
    for b in (1, 3):
        series = dict(grids[b].get(5, []))
        sample = [f"K={k}:{series[k]:.2e}" for k in (5, 10, 20) if k in series]
        report(f"  B={b}, V=5: " + ", ".join(sample))

    assert abs(exact_v3_b1 - (1 / M) ** 3) < 1e-12
    assert exact_v3_b3 > exact_v3_b1 * 20  # "increases dramatically with B"
    assert abs(mc - exact_mc) < 0.005
    # Decreasing in V at fixed K; increasing in K at fixed V=1.
    probs_v = [p_normal_included(3, M, 5, v) for v in range(1, 6)]
    assert probs_v == sorted(probs_v, reverse=True)
    probs_k = [p_normal_included(3, M, k, 1) for k in range(1, 26)]
    assert probs_k == sorted(probs_k)
