"""The stable, documented facade of the repro library.

Four verbs cover the paper's workflow end to end:

* :func:`extract` - batch extraction over a trace (file or
  :class:`~repro.flows.table.FlowTable`);
* :func:`stream` - the same pipeline chunk-by-chunk with bounded
  memory;
* :func:`open_store` - open/create a persistent incident store;
* :func:`rank` - correlate and rank a store's reports into triaged
  incidents.

Everything accepts either a ready :class:`ExtractionConfig`, a nested
dict, or a path to a TOML run config, plus flat keyword overrides::

    import repro.api as repro

    result = repro.extract("trace.npz", min_support=500)
    result = repro.extract("trace.csv", config="run.toml", jobs=4)
    summary = repro.stream("trace.csv", config="run.toml")
    for entry in repro.rank("incidents.db", top=5):
        print(entry.render())

The names re-exported here (and the four verbs) are the supported
surface; internals may move between modules, these stay.  Extension
points resolve through :mod:`repro.registry`, so a third-party miner,
reader, feature set, or sink registered there is selectable from this
facade without touching ``repro`` internals.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Mapping

from repro.core.config import (
    ExtractionConfig,
    IncidentSettings,
    MiningSettings,
    ParallelSettings,
    StreamingSettings,
)
from repro.core.pipeline import (
    AnomalyExtractor,
    ExtractionResult,
    IntervalSink,
    ReportSink,
    TraceExtraction,
)
from repro.core.report import ExtractionReport, TriagedItemset
from repro.detection.detector import DetectorConfig
from repro.detection.features import CustomFeature, Feature, resolve_features
from repro.errors import ConfigError, ReproError, TraceFormatError
from repro.flows.io import DEFAULT_CHUNK_ROWS, iter_csv, read_trace
from repro.flows.stream import DEFAULT_INTERVAL_SECONDS
from repro.flows.table import FlowTable
from repro.incidents.rank import RankedIncident, rank_incidents  # noqa: F401
from repro.incidents.store import IncidentStore
from repro.incidents.store import open_store as _open_store
from repro.registry import Registry, feature_sets, miners, readers, sinks
from repro.streaming.extractor import StreamExtraction, StreamingExtractor

__all__ = [
    "extract",
    "stream",
    "open_store",
    "rank",
    "resolve_config",
    # Curated re-exports (the stable names).
    "AnomalyExtractor",
    "StreamingExtractor",
    "ExtractionConfig",
    "DetectorConfig",
    "MiningSettings",
    "ParallelSettings",
    "StreamingSettings",
    "IncidentSettings",
    "ExtractionResult",
    "TraceExtraction",
    "StreamExtraction",
    "ExtractionReport",
    "TriagedItemset",
    "RankedIncident",
    "IncidentStore",
    "FlowTable",
    "Feature",
    "CustomFeature",
    "resolve_features",
    "ReportSink",
    "IntervalSink",
    "Registry",
    "miners",
    "feature_sets",
    "readers",
    "sinks",
    "ReproError",
    "ConfigError",
]


def resolve_config(
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None,
    **overrides: object,
) -> ExtractionConfig:
    """Normalize every accepted config spelling into an
    :class:`ExtractionConfig`.

    ``config`` may be a ready config, a nested mapping
    (:meth:`ExtractionConfig.from_dict`), a path to a TOML run config
    (:meth:`ExtractionConfig.from_toml`), or ``None`` for defaults.
    ``overrides`` are flat or grouped fields applied on top (the
    equivalent of explicit CLI flags over a ``--config`` file).
    """
    if config is None:
        resolved = ExtractionConfig()
    elif isinstance(config, ExtractionConfig):
        resolved = config
    elif isinstance(config, Mapping):
        resolved = ExtractionConfig.from_dict(config)
    elif isinstance(config, (str, os.PathLike)):
        resolved = ExtractionConfig.from_toml(config)
    else:
        raise ConfigError(
            f"config must be an ExtractionConfig, mapping, or TOML path, "
            f"got {type(config).__name__}"
        )
    if overrides:
        resolved = resolved.replace(**overrides)
    return resolved


def _load_flows(trace: FlowTable | str | os.PathLike[str]) -> FlowTable:
    if isinstance(trace, FlowTable):
        return trace
    return read_trace(trace)


def extract(
    trace: FlowTable | str | os.PathLike[str],
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    sink: ReportSink | None = None,
    **overrides: object,
) -> TraceExtraction:
    """Run the full batch pipeline (Fig. 3) over a trace.

    Args:
        trace: a :class:`FlowTable` or a path handled by the trace
            reader registry (".npz", ".csv", or any registered
            extension).
        config: config object / nested dict / TOML path (see
            :func:`resolve_config`).
        interval_seconds: measurement interval length ``L``.
        origin: timestamp of interval 0.
        seed: detector hash seed.
        sink: optional report sink; defaults to the store opened via
            ``config.incidents.store_path`` when one is set.
        **overrides: flat or grouped config fields, e.g.
            ``min_support=500``, ``miner="fpgrowth"``, ``jobs=4``.

    Returns:
        The :class:`TraceExtraction` with one
        :class:`ExtractionResult` per alarmed interval.
    """
    flows = _load_flows(trace)
    resolved = resolve_config(config, **overrides)
    with AnomalyExtractor(resolved, seed=seed) as extractor:
        return extractor.run_trace(
            flows, interval_seconds, origin=origin, sink=sink
        )


def stream(
    source: (
        Iterable[FlowTable] | str | os.PathLike[str]
    ),
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    sink: ReportSink | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    keep_reports: bool = True,
    **overrides: object,
) -> StreamExtraction:
    """Run the pipeline chunk-by-chunk with bounded memory.

    ``source`` is a ``.csv`` path (streamed via
    :func:`~repro.flows.io.iter_csv`) or any iterable of
    :class:`FlowTable` chunks.  With default settings the result is
    batch-equivalent; see :class:`StreamingExtractor` for the
    incremental API and the retention knobs
    (``keep_reports`` here, ``streaming.keep_extractions`` in the
    config).

    Returns:
        The :class:`StreamExtraction` summary (counters always
        populated; ``extractions`` empty when
        ``config.streaming.keep_extractions`` is False).
    """
    if isinstance(source, (str, os.PathLike)):
        # Streaming parses incrementally, which only the row-oriented
        # CSV format supports; mirror the CLI's up-front rejection so a
        # binary trace surfaces as a ReproError, not a decode crash.
        if not os.fspath(source).endswith(".csv"):
            raise TraceFormatError(
                f"{source}: stream reads a .csv trace (pass a FlowTable "
                f"chunk iterable for other sources, or use extract() "
                f"for whole-file formats)"
            )
        chunks: Iterable[FlowTable] = iter_csv(source, chunk_rows=chunk_rows)
    else:
        chunks = source
    resolved = resolve_config(config, **overrides)
    with StreamingExtractor(
        resolved,
        seed=seed,
        interval_seconds=interval_seconds,
        origin=origin,
        sink=sink,
        keep_reports=keep_reports,
    ) as streamer:
        return streamer.run(chunks)


def open_store(
    path: str | os.PathLike[str],
    *,
    must_exist: bool = False,
    jaccard: float | None = None,
    quiet_gap: int | None = None,
) -> IncidentStore:
    """Open (or create) the persistent incident store at ``path``.

    A thin alias of :func:`repro.incidents.store.open_store`, exported
    here so the whole persist-correlate-rank workflow is reachable from
    one module.
    """
    return _open_store(
        path, must_exist=must_exist, jaccard=jaccard, quiet_gap=quiet_gap
    )


def rank(
    store: IncidentStore | str | os.PathLike[str],
    *,
    profile: str = "balanced",
    jaccard: float | None = None,
    quiet_gap: int | None = None,
    top: int | None = None,
) -> list[RankedIncident]:
    """Correlate and rank a store's reports into triaged incidents.

    Args:
        store: an open :class:`IncidentStore` or a path to one (opened
            read-style with ``must_exist=True`` and closed after the
            query).
        profile: ranking weight profile ("balanced", "volume",
            "campaign", or a
            :class:`~repro.incidents.rank.WeightProfile`).
        jaccard / quiet_gap: correlation overrides (``None`` = the
            store's persisted knobs).
        top: keep only the k best-ranked incidents.
    """
    if isinstance(store, (str, os.PathLike)):
        with _open_store(store, must_exist=True) as opened:
            ranked = opened.incidents(
                jaccard=jaccard, quiet_gap=quiet_gap, profile=profile
            )
    else:
        ranked = store.incidents(
            jaccard=jaccard, quiet_gap=quiet_gap, profile=profile
        )
    if top is not None:
        ranked = ranked[:top]
    return ranked
