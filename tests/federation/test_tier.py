"""The batch tier: split_trace, run_federation, and the incident path."""

from __future__ import annotations

import ipaddress

import pytest

from repro.errors import FederationError
from repro.federation import run_federation, split_trace
from repro.federation.federator import FEDERATED_ALGORITHM
from repro.incidents.store import open_store
from repro.mining.items import format_item

INTERVAL_SECONDS = 900.0


class TestSplitTrace:
    def test_partitions_the_trace(self, ddos_trace):
        parts = split_trace(ddos_trace.flows, ("a", "b", "c"), "src_ip%3")
        assert set(parts) == {"a", "b", "c"}
        assert sum(len(p) for p in parts.values()) == len(ddos_trace.flows)
        assert all(len(p) > 0 for p in parts.values())

    def test_deterministic(self, ddos_trace):
        one = split_trace(ddos_trace.flows, ("a", "b"), "dst_ip%2")
        two = split_trace(ddos_trace.flows, ("a", "b"), "dst_ip%2")
        for site in ("a", "b"):
            assert len(one[site]) == len(two[site])

    def test_single_site_takes_everything(self, ddos_trace):
        parts = split_trace(ddos_trace.flows, ("solo",), "dst_ip")
        assert len(parts["solo"]) == len(ddos_trace.flows)

    def test_no_sites_refused(self, ddos_trace):
        with pytest.raises(FederationError, match="at least one site"):
            split_trace(ddos_trace.flows, (), "dst_ip")


@pytest.fixture(scope="module")
def fed_result(site_flows, fed_config):
    return run_federation(
        site_flows,
        config=fed_config,
        seed=0,
        cm_width=512,
        cm_depth=4,
        interval_seconds=INTERVAL_SECONDS,
        min_support=300,
    )


class TestRunFederation:
    def test_shape(self, fed_result):
        assert fed_result.sites == ("east", "west")
        assert fed_result.digests == 60
        assert fed_result.n_intervals == 30
        assert fed_result.straggler_intervals() == []

    def test_alarms_match_concatenated_detection(
        self, fed_result, local_run
    ):
        _, run = local_run
        assert fed_result.alarm_intervals() == run.alarm_intervals()
        assert fed_result.alarm_intervals()  # attack detected

    def test_reports_carry_federated_provenance(self, fed_result):
        assert fed_result.reports
        for report in fed_result.reports:
            assert report.algorithm == FEDERATED_ALGORITHM
            assert report.selected_flows == 0

    def test_attack_victim_extracted(self, fed_result, small_profile):
        victim = small_profile.internal_base + 5
        expected = f"dstIP={ipaddress.ip_address(victim)}"
        rendered = {
            format_item(item)
            for report in fed_result.reports
            for triaged in report.itemsets
            for item in triaged.itemset.items
        }
        assert expected in rendered

    def test_incidents_ranked(self, fed_result):
        assert fed_result.incidents
        scores = [entry.score for entry in fed_result.incidents]
        assert scores == sorted(scores, reverse=True)

    def test_empty_traces_refused(self):
        with pytest.raises(FederationError, match="at least one site"):
            run_federation({})


class TestStragglerTier:
    def test_short_site_surfaces_as_straggler(
        self, site_flows, fed_config
    ):
        west = site_flows["west"]
        cut = west.select(west.column("start") < 24 * INTERVAL_SECONDS)
        result = run_federation(
            {"east": site_flows["east"], "west": cut},
            config=fed_config,
            seed=0,
            cm_width=512,
            cm_depth=4,
            interval_seconds=INTERVAL_SECONDS,
            min_support=300,
        )
        assert result.n_intervals == 30
        assert result.straggler_intervals() == list(range(24, 30))
        for fi in result.intervals[24:]:
            assert fi.stragglers == ("west",)
            assert fi.sites == ("east",)


class TestStorePath:
    def test_reports_persist_to_store(
        self, site_flows, fed_config, tmp_path
    ):
        path = str(tmp_path / "federation.db")
        with open_store(path) as store:
            result = run_federation(
                site_flows,
                config=fed_config,
                seed=0,
                cm_width=512,
                cm_depth=4,
                interval_seconds=INTERVAL_SECONDS,
                min_support=300,
                store=store,
            )
            assert len(store) == len(result.reports)
            stored = store.reports()
            assert [r.to_dict() for r in stored] == [
                r.to_dict() for r in result.reports
            ]
