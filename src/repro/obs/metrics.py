"""Dependency-free metrics core: counters, gauges, histograms.

Three instrument types with Prometheus-compatible semantics, a
:class:`MetricsRegistry` to hold them, and a :class:`time_stage`
context manager / decorator for wall-clock stage spans.  Only the
standard library is used, so the package imports anywhere the library
does.

Design constraints (the tentpole's contract):

* **No-op when disabled.**  :data:`NULL_REGISTRY` exposes the same
  surface but every instrument it hands out discards updates, so
  instrumented code paths never branch on "is observability on?" -
  they just call ``counter.inc()`` and the disabled case costs one
  method call.
* **Byte-stable snapshots.**  :meth:`MetricsRegistry.snapshot` renders
  metric families sorted by name and samples sorted by label values,
  with canonical float formatting, so two registries that observed the
  same events serialize identically (the test suite's equivalence
  lever).
* **Thread-safe.**  Each instrument family carries one lock guarding
  its child map and values; the parallel detector bank and thread
  executor update counters from worker threads.

Labelled instruments follow the parent/child model: the registry hands
out the *family* (``registry.counter(name, help, ("pipeline",))``) and
``family.labels("linkA")`` binds a child holding the actual value.
Unlabelled families are their own single child.
"""

from __future__ import annotations

import functools
import math
import threading
import time
from collections.abc import Callable, Iterator, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "time_stage",
]

#: Default histogram bounds (seconds): sub-millisecond stages up to a
#: minute-long mining run.  Overridable per registry and per histogram.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
)

#: Hard cap on label-value combinations per family - a runaway label
#: (e.g. an interval index used as a label) raises instead of slowly
#: eating the process.
MAX_LABEL_CARDINALITY = 1_000

_METRIC_TYPES = ("counter", "gauge", "histogram")


class MetricsError(ValueError):
    """Misuse of the metrics API (type mismatch, bad labels, ...).

    A ``ValueError`` subclass so the obs core stays importable without
    the rest of the library's error hierarchy.
    """


def _check_name(name: str) -> str:
    if not name or not all(
        c.isalnum() or c in "_:" for c in name
    ) or name[0].isdigit():
        raise MetricsError(f"invalid metric name: {name!r}")
    return name


class _Instrument:
    """Common parent/child plumbing of the three instrument types."""

    metric_type = "abstract"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
    ):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not label or not label.isidentifier():
                raise MetricsError(f"invalid label name: {label!r}")
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Instrument] = {}
        if not self.labelnames:
            # An unlabelled family is its own single child.
            self._children[()] = self

    def labels(self, *values: object, **kv: object) -> "_Instrument":
        """The child bound to one label-value combination.

        Accepts positional values (in ``labelnames`` order) or
        keywords; repeated calls with the same values return the same
        child.
        """
        if kv:
            if values:
                raise MetricsError(
                    "pass label values positionally or by keyword, not both"
                )
            try:
                values = tuple(kv[name] for name in self.labelnames)
            except KeyError as exc:
                raise MetricsError(
                    f"{self.name}: missing label {exc.args[0]!r} "
                    f"(labels: {self.labelnames})"
                ) from exc
            if len(kv) != len(self.labelnames):
                extra = sorted(set(kv) - set(self.labelnames))
                raise MetricsError(
                    f"{self.name}: unknown labels {extra} "
                    f"(labels: {self.labelnames})"
                )
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {self.labelnames}, got {len(values)}"
            )
        if not self.labelnames:
            return self
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_LABEL_CARDINALITY:
                    raise MetricsError(
                        f"{self.name}: more than {MAX_LABEL_CARDINALITY} "
                        f"label combinations - a label is carrying "
                        f"unbounded values"
                    )
                child = self._make_child()
                self._children[key] = child
        return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def samples(self) -> Iterator[tuple[tuple[str, ...], "_Instrument"]]:
        """(label values, child) pairs, sorted by label values."""
        with self._lock:
            items = list(self._children.items())
        return iter(sorted(items, key=lambda kv_: kv_[0]))


class Counter(_Instrument):
    """A monotonically increasing value (events, rows, drops)."""

    metric_type = "counter"

    def __init__(self, name="", help="", labelnames=()):
        super().__init__(name or "_child", help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        child = Counter.__new__(Counter)
        child._value = 0.0
        child._lock = threading.Lock()
        return child

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(
                f"counters only go up; inc({amount}) is negative"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument):
    """A value that can go up and down (pending intervals, lag)."""

    metric_type = "gauge"

    def __init__(self, name="", help="", labelnames=()):
        super().__init__(name or "_child", help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        child = Gauge.__new__(Gauge)
        child._value = 0.0
        child._lock = threading.Lock()
        return child

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Instrument):
    """Cumulative-bucket distribution (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists, and each bucket counts observations ``<=`` its bound.
    """

    metric_type = "histogram"

    def __init__(self, name="", help="", labelnames=(),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name or "_child", help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise MetricsError(
                f"bucket bounds must be finite (+Inf is implicit): {bounds}"
            )
        if list(bounds) != sorted(set(bounds)):
            raise MetricsError(
                f"bucket bounds must be strictly increasing: {bounds}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def _make_child(self) -> "Histogram":
        child = Histogram.__new__(Histogram)
        child.buckets = self.buckets
        child._counts = [0] * (len(self.buckets) + 1)
        child._sum = 0.0
        child._count = 0
        child._lock = threading.Lock()
        return child

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts, ``+Inf`` last (== count)."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out = []
        for c in counts:
            total += c
            out.append(total)
        return out


_INSTRUMENT_CLASSES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Get-or-create home of every instrument of one run.

    Re-requesting a name returns the existing family; re-requesting it
    with a different type or label set raises - two call sites that
    disagree about a metric are a bug, not two metrics.
    """

    enabled = True

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.default_buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._families: dict[str, _Instrument] = {}

    def _get_or_create(
        self, metric_type: str, name: str, help: str,
        labelnames: Sequence[str], **kwargs: object,
    ) -> _Instrument:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.metric_type != metric_type:
                    raise MetricsError(
                        f"{name} is already registered as a "
                        f"{family.metric_type}, not a {metric_type}"
                    )
                if family.labelnames != labelnames:
                    raise MetricsError(
                        f"{name} is already registered with labels "
                        f"{family.labelnames}, not {labelnames}"
                    )
                return family
            family = _INSTRUMENT_CLASSES[metric_type](
                name, help, labelnames, **kwargs
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        family = self._get_or_create("counter", name, help, labelnames)
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        family = self._get_or_create("gauge", name, help, labelnames)
        assert isinstance(family, Gauge)
        return family

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> Histogram:
        family = self._get_or_create(
            "histogram", name, help, labelnames,
            buckets=self.default_buckets if buckets is None else buckets,
        )
        assert isinstance(family, Histogram)
        return family

    def families(self) -> list[_Instrument]:
        """Every registered family, sorted by name (stable output)."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def snapshot(self) -> dict:
        """Canonical plain-data rendering (byte-stable ordering)."""
        from repro.obs.export import snapshot

        return snapshot(self)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every family."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self)


class _NullInstrument:
    """One object that no-ops the whole instrument surface."""

    metric_type = "null"
    name = "null"
    help = ""
    labelnames: tuple[str, ...] = ()
    buckets: tuple[float, ...] = ()
    value = 0.0
    sum = 0.0
    count = 0

    def labels(self, *values: object, **kv: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> list[int]:
        return []

    def samples(self):
        return iter(())


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: same surface, zero state, zero cost.

    Every accessor returns the shared no-op instrument, so code
    instrumented against a real registry runs unchanged (and
    byte-identically) when observability is off.
    """

    enabled = False
    default_buckets: tuple[float, ...] = DEFAULT_BUCKETS

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"metrics": []}

    def render_prometheus(self) -> str:
        return ""


#: The shared disabled registry (stateless, safe to share globally).
NULL_REGISTRY = NullRegistry()


class time_stage:
    """Record a wall-clock span into a histogram (or any ``observe``).

    Context manager::

        with time_stage(stage_seconds.labels("mining")):
            result = miner(...)

    or decorator::

        @time_stage(stage_seconds.labels("triage"))
        def build_report(...): ...

    The span is recorded even when the body raises - a failing stage
    still spent the time.  :meth:`cancel` suppresses the pending
    observation (e.g. a timed generator pull that found the stream
    exhausted and did no stage work worth recording).
    """

    __slots__ = ("_target", "_start", "_cancelled")

    def __init__(self, target: Histogram | _NullInstrument):
        self._target = target
        self._start = 0.0
        self._cancelled = False

    def cancel(self) -> None:
        """Drop the span: ``__exit__`` records nothing."""
        self._cancelled = True

    def __enter__(self) -> "time_stage":
        self._start = time.perf_counter()
        self._cancelled = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._cancelled:
            self._target.observe(time.perf_counter() - self._start)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self._target.observe(time.perf_counter() - start)

        return wrapper
