"""Federation overhead: what shipping sketches instead of flows costs.

ISSUE 10 acceptance bench: the federation tier replaces O(flows)
inter-site transfer with O(sketch) interval digests, so three numbers
decide whether the design holds:

1. **Digest size and merge latency vs. collector count.**  One trace
   is hash-sharded across 1/2/4/8 collectors; each configuration
   reports total wire bytes and the federator's merge+detect wall
   clock.  The merged view is exact, so the released alarms must be
   *identical* across every collector count (asserted).
2. **Sketch state vs. O(flows).**  Per-interval digest wire bytes
   against the raw flow-table bytes of the same interval - the
   compression the wire format actually delivers at this scale.
   Sketch size is constant in flow count, so the ratio improves as
   intervals grow; the assertion only pins the measured scale.
3. **Precision@k.**  Top-k heavy hitters by merged count-min estimate
   against exact top-k by true count on the attack interval - the
   support fidelity the federated extraction path rides on.
"""

import time

import numpy as np

import pytest

from repro.anomalies import DDoSInjector, EventSchedule
from repro.detection.detector import DetectorConfig
from repro.detection.features import Feature
from repro.federation import Federator, split_trace
from repro.federation.collector import Collector
from repro.flows.stream import iter_intervals
from repro.flows.table import ALL_COLUMNS
from repro.traffic.generator import TraceGenerator
from repro.traffic.profiles import switch_like

N_INTERVALS = 24
FLOWS_PER_INTERVAL = 2000
TRAINING_INTERVALS = 16
ATTACK_INTERVAL = 20
COLLECTOR_COUNTS = (1, 2, 4, 8)
CM_WIDTH = 1024
CM_DEPTH = 4
MIN_SUPPORT = 400
TOP_K = 10
INTERVAL_SECONDS = 900.0


def _detector():
    return DetectorConfig(
        clones=3,
        bins=256,
        vote_threshold=3,
        training_intervals=TRAINING_INTERVALS,
    )


@pytest.fixture(scope="module")
def trace():
    profile = switch_like(FLOWS_PER_INTERVAL)
    schedule = EventSchedule()
    schedule.add_at_interval(
        DDoSInjector(
            victim_ip=profile.internal_base + 9,
            flows=1500,
            sources=300,
        ),
        ATTACK_INTERVAL,
        INTERVAL_SECONDS,
        duration=880.0,
    )
    return TraceGenerator(profile, seed=11).generate(
        N_INTERVALS, schedule=schedule
    )


def _federate(flows, n_collectors):
    """Collect at n sites, merge at one federator; returns timings."""
    sites = tuple(f"pop{i}" for i in range(n_collectors))
    parts = split_trace(flows, sites, f"src_ip%{n_collectors}")
    config = _detector()
    started = time.perf_counter()
    per_site = {
        site: Collector(
            site=site,
            config=config,
            seed=0,
            cm_width=CM_WIDTH,
            cm_depth=CM_DEPTH,
        ).run(parts[site], INTERVAL_SECONDS, origin=0.0)
        for site in sites
    }
    collect_seconds = time.perf_counter() - started
    wire_bytes = sum(
        len(digest.to_json().encode("utf-8"))
        for digests in per_site.values()
        for digest in digests
    )
    n_digests = sum(len(digests) for digests in per_site.values())
    federator = Federator(
        sites=sites,
        config=config,
        seed=0,
        cm_width=CM_WIDTH,
        cm_depth=CM_DEPTH,
        interval_seconds=INTERVAL_SECONDS,
        min_support=MIN_SUPPORT,
    )
    released = []
    started = time.perf_counter()
    depth = max(len(digests) for digests in per_site.values())
    for i in range(depth):
        for site in sites:
            if i < len(per_site[site]):
                released.extend(federator.add(per_site[site][i]))
    released.extend(federator.finish())
    merge_seconds = time.perf_counter() - started
    return {
        "released": released,
        "alarms": [fi.interval for fi in released if fi.alarm],
        "wire_bytes": wire_bytes,
        "n_digests": n_digests,
        "collect_seconds": collect_seconds,
        "merge_seconds": merge_seconds,
    }


def test_digest_size_and_merge_latency_vs_collectors(trace, report):
    flows = trace.flows
    lines = [
        "",
        f"Federation - digest size / merge latency vs. collector count "
        f"({len(flows)} flows, {N_INTERVALS} intervals, "
        f"count-min {CM_DEPTH}x{CM_WIDTH})",
    ]
    metrics = {}
    baseline_alarms = None
    for count in COLLECTOR_COUNTS:
        run = _federate(flows, count)
        assert len(run["released"]) == N_INTERVALS
        if baseline_alarms is None:
            baseline_alarms = run["alarms"]
            assert baseline_alarms, "the planted DDoS must alarm"
        # Merged detection is exact: the alarm set cannot depend on
        # how many collectors the trace was sharded across.
        assert run["alarms"] == baseline_alarms
        per_digest = run["wire_bytes"] / run["n_digests"]
        lines.append(
            f"  {count} collector{'s' if count > 1 else ' '}: "
            f"{run['wire_bytes'] / 1e6:6.2f} MB wire "
            f"({per_digest / 1e3:6.1f} kB/digest), "
            f"merge {run['merge_seconds'] * 1e3:7.1f} ms, "
            f"collect {run['collect_seconds']:5.2f} s"
        )
        metrics[f"collectors_{count}"] = {
            "wire_bytes": run["wire_bytes"],
            "bytes_per_digest": round(per_digest, 1),
            "merge_seconds": round(run["merge_seconds"], 4),
            "collect_seconds": round(run["collect_seconds"], 4),
        }
    lines.append(
        f"  alarms invariant across collector counts: {baseline_alarms}"
    )
    report(*lines, federation_scaling=metrics)


def test_sketch_state_vs_flow_state(trace, report):
    flows = trace.flows
    flow_bytes = sum(flows.column(c).nbytes for c in ALL_COLUMNS)
    collector = Collector(
        site="pop0",
        config=_detector(),
        seed=0,
        cm_width=CM_WIDTH,
        cm_depth=CM_DEPTH,
    )
    digests = collector.run(flows, INTERVAL_SECONDS, origin=0.0)
    wire_bytes = sum(
        len(d.to_json().encode("utf-8")) for d in digests
    )
    per_interval_digest = wire_bytes / len(digests)
    per_interval_flows = flow_bytes / N_INTERVALS
    ratio = per_interval_flows / per_interval_digest
    report(
        "",
        f"Federation - sketch state vs. O(flows) "
        f"({FLOWS_PER_INTERVAL} flows/interval)",
        f"  flow table:  {per_interval_flows / 1e3:8.1f} kB/interval",
        f"  digest wire: {per_interval_digest / 1e3:8.1f} kB/interval",
        f"  flow/digest ratio: {ratio:.2f}x (the digest is constant "
        f"in flow count, so the ratio grows with interval size)",
        federation_state={
            "flow_bytes_per_interval": round(per_interval_flows),
            "digest_bytes_per_interval": round(per_interval_digest),
            "compression_ratio": round(ratio, 2),
        },
    )


def test_precision_at_k_merged_vs_exact(trace, report):
    flows = trace.flows
    sites = ("popA", "popB")
    parts = split_trace(flows, sites, "src_ip%2")
    config = _detector()
    digests = {
        site: Collector(
            site=site,
            config=config,
            seed=0,
            cm_width=CM_WIDTH,
            cm_depth=CM_DEPTH,
        ).run(parts[site], INTERVAL_SECONDS, origin=0.0)
        for site in sites
    }
    merged = digests["popA"][ATTACK_INTERVAL].merge(
        digests["popB"][ATTACK_INTERVAL]
    )
    attack_flows = next(
        view.flows
        for view in iter_intervals(
            flows, INTERVAL_SECONDS, origin=0.0
        )
        if view.index == ATTACK_INTERVAL
    )
    lines = ["", f"Federation - precision@{TOP_K} merged vs. exact"]
    metrics = {}
    for feature in (Feature.DST_IP, Feature.SRC_IP):
        values = feature.extract(attack_flows)
        unique, truth = np.unique(values, return_counts=True)
        sketch = merged.countmin(feature)
        estimates = np.array(
            [sketch.estimate(int(v)) for v in unique]
        )
        exact_top = set(unique[np.argsort(-truth)[:TOP_K]].tolist())
        merged_top = set(
            unique[np.argsort(-estimates)[:TOP_K]].tolist()
        )
        precision = len(exact_top & merged_top) / TOP_K
        assert precision >= 0.6
        lines.append(
            f"  {feature.short_name:>6}: precision@{TOP_K} "
            f"{precision:4.2f} over {len(unique)} candidates"
        )
        metrics[feature.short_name] = precision
    report(*lines, federation_precision_at_k=metrics)
