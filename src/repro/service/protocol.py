"""A minimal HTTP/1.1 server protocol over asyncio streams.

The daemon must not depend on a web framework (the toolchain is
stdlib + numpy only), and its HTTP needs are tiny: five routes, small
JSON or text bodies, one request per connection.  This module parses
exactly that - request line, headers, ``Content-Length`` body - and
renders ``Connection: close`` responses.  Anything outside the
supported subset (chunked bodies, upgrades, absurd header blocks)
raises :class:`~repro.errors.ServiceError`, which the dispatcher maps
to a 400.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ServiceError

#: Largest accepted header block (request line included) - far above
#: anything a legitimate client sends, small enough that a garbage
#: stream cannot balloon memory.
MAX_HEADER_BYTES = 64 * 1024

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes


async def _readline(reader: asyncio.StreamReader) -> bytes:
    """One header line; the reader's own line-length limit (64 KiB by
    default) surfaces as a ``ValueError``, which must map to a 400, not
    crash the connection handler."""
    try:
        return await reader.readline()
    except ValueError as exc:
        raise ServiceError(f"header line too long: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> HttpRequest | None:
    """Parse one request from ``reader``; ``None`` on clean EOF.

    Header names are lower-cased; the query string is decoded into a
    plain dict (last value wins - none of the daemon's parameters
    repeat).  Bodies larger than ``max_body`` are refused before a
    single body byte is read.
    """
    request_line = await _readline(reader)
    if not request_line:
        return None
    if len(request_line) > MAX_HEADER_BYTES:
        raise ServiceError("request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ServiceError(
            f"malformed request line: {request_line.decode('latin-1')!r}"
        )
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ServiceError(f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    header_bytes = len(request_line)
    while True:
        line = await _readline(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ServiceError("header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ServiceError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ServiceError(
            "chunked transfer encoding is not supported; send a "
            "Content-Length body"
        )
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ServiceError(
            f"malformed Content-Length {length_text!r}"
        ) from exc
    if length < 0:
        raise ServiceError(f"negative Content-Length {length}")
    if length > max_body:
        raise ServiceError(
            f"request body of {length} bytes exceeds the configured "
            f"max_body_bytes ({max_body})"
        )
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServiceError(
                f"connection closed {length - len(exc.partial)} bytes "
                f"short of the declared Content-Length"
            ) from exc
    else:
        body = b""
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
) -> bytes:
    """Render one complete ``Connection: close`` HTTP/1.1 response."""
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body
