"""Shared CLI plumbing.

Three concerns live here so every subcommand module stays small:

* **Tracked arguments** - :class:`TrackedAction` records which options
  the user actually typed, which is what lets ``--config run.toml``
  merge correctly: explicit flags override file values, file values
  override flag defaults.
* **Registry-driven choices** - ``--miner`` and ``--features`` take
  their choice lists from :mod:`repro.registry`, so a registered
  third-party extension is selectable without touching the CLI.
* **Declarative run configs** - :func:`extraction_config` builds the
  :class:`~repro.core.config.ExtractionConfig` for a subcommand from
  the layered sources.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import signal

from repro.core import ExtractionConfig
from repro.core.config import load_toml_data
from repro.errors import ConfigError
from repro.flows import read_trace
from repro.flows.stream import DEFAULT_INTERVAL_SECONDS
from repro.parallel import EXECUTOR_BACKENDS
from repro.registry import feature_sets, miners


class GracefulInterrupt(Exception):
    """SIGINT/SIGTERM surfaced as an exception by :func:`interrupt_guard`.

    Carries the signal number so the command can exit with the
    conventional ``128 + signum`` code after flushing.
    """

    def __init__(self, signum: int):
        self.signum = signum
        super().__init__(f"interrupted by {signal.Signals(signum).name}")

    @property
    def exit_code(self) -> int:
        return 128 + self.signum


@contextlib.contextmanager
def interrupt_guard():
    """Convert SIGINT/SIGTERM inside the block into
    :class:`GracefulInterrupt`.

    The streaming commands wrap only their *feed loop* in this guard:
    an interrupt then stops ingesting but still runs the flush, the
    summary, and the ``--store``/``--metrics``/``--trace`` writers, so
    a Ctrl-C'd overnight run keeps everything it extracted instead of
    dying with a bare ``KeyboardInterrupt``.  Handlers are restored on
    exit; outside the main thread (where ``signal.signal`` refuses)
    the guard degrades to a no-op.
    """
    def raise_interrupt(signum, frame):
        raise GracefulInterrupt(signum)

    previous: dict[int, object] = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, raise_interrupt)
        except (ValueError, OSError):
            # Not the main thread: leave delivery to the default
            # handlers rather than fail the run.
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]


def load_trace(path: str):
    """Read a whole trace through the trace-reader registry."""
    return read_trace(path)


def chunk_source(
    trace: str, chunk_rows: int, command: str = "stream", metrics=None
):
    """Chunked flow iterator for the streaming subcommands: a ``.csv``
    path or ``'-'`` for stdin (anything else is rejected up front -
    incremental parsing is row-oriented).  ``metrics`` threads a
    registry through to the CSV parser's row counters."""
    import sys

    from repro.errors import TraceFormatError
    from repro.flows import iter_csv, iter_csv_handle

    if trace == "-":
        return iter_csv_handle(
            sys.stdin, chunk_rows=chunk_rows, name="<stdin>",
            metrics=metrics,
        )
    if trace.endswith(".csv"):
        return iter_csv(trace, chunk_rows=chunk_rows, metrics=metrics)
    raise TraceFormatError(
        f"{trace}: {command} reads a .csv trace (or '-' for stdin)"
    )


# ----------------------------------------------------------------------
# Explicit-flag tracking
# ----------------------------------------------------------------------
class TrackedAction(argparse.Action):
    """``store`` semantics plus a record that the option was typed."""

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        _mark_explicit(namespace, self.dest)


class TrackedTrueAction(argparse.Action):
    """``store_true`` semantics plus the explicit record."""

    def __init__(self, option_strings, dest, default=False, **kwargs):
        kwargs.pop("nargs", None)
        super().__init__(option_strings, dest, nargs=0, default=default,
                         **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, True)
        _mark_explicit(namespace, self.dest)


def _mark_explicit(namespace: argparse.Namespace, dest: str) -> None:
    explicit = getattr(namespace, "_explicit", None)
    if explicit is None:
        explicit = set()
        setattr(namespace, "_explicit", explicit)
    explicit.add(dest)


def explicit_dests(args: argparse.Namespace) -> set[str]:
    """The option dests the user explicitly passed on the command line."""
    return getattr(args, "_explicit", set())


def positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1: {value}")
    return value


# ----------------------------------------------------------------------
# Shared argument groups
# ----------------------------------------------------------------------
def add_config_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config", default=None, metavar="RUN.TOML",
        help="declarative run config (TOML with [detector]/[mining]/"
        "[parallel]/[streaming]/[incidents] tables); explicit "
        "command-line flags override file values",
    )


def add_detector_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--interval-seconds", type=float,
                        default=DEFAULT_INTERVAL_SECONDS)
    parser.add_argument("--clones", type=int, default=3,
                        action=TrackedAction)
    parser.add_argument("--bins", type=int, default=1024,
                        action=TrackedAction)
    parser.add_argument("--votes", type=int, default=3,
                        action=TrackedAction)
    parser.add_argument("--training", type=int, default=96,
                        action=TrackedAction)
    parser.add_argument("--features", default=None,
                        choices=sorted(feature_sets.names()),
                        action=TrackedAction,
                        help="monitored feature set (registered via "
                        "repro.registry.feature_sets; default: the "
                        "paper's five detectors)")


def add_mining_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--min-support", type=int, default=1000,
                        action=TrackedAction)
    parser.add_argument("--prefilter", choices=("union", "intersection"),
                        default="union", action=TrackedAction)
    parser.add_argument("--miner", choices=sorted(miners.names()),
                        default="apriori", action=TrackedAction,
                        help="frequent item-set miner (any name "
                        "registered via repro.registry.miners)")


def add_format_arg(
    parser: argparse.ArgumentParser,
    json_help: str = "one JSON document per alarmed interval",
) -> None:
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help=f"output format: human-readable table or "
                        f"{json_help}")


def add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=None, metavar="PATH",
                        action=TrackedAction,
                        help="persist every alarmed interval's extraction report "
                        "to a SQLite incident store at PATH (query it "
                        "with 'repro-extract incidents PATH')")


def add_metrics_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export run metrics (throughput, late drops, stage "
        "timings) to PATH when the run completes; '-' writes to "
        "stdout",
    )
    parser.add_argument(
        "--metrics-format", choices=("prom", "json"), default="prom",
        help="metrics export format: Prometheus text exposition or "
        "one canonical JSON snapshot",
    )


def build_metrics_registry(args: argparse.Namespace, config):
    """A real registry when the run wants one, else ``None``.

    ``--metrics PATH`` or a run config with ``[obs] enabled = true``
    turns observability on; everything else runs against the no-op
    registry (chosen downstream when this returns ``None``).
    """
    from repro.obs.metrics import MetricsRegistry

    if getattr(args, "metrics", None) is None and not config.obs_enabled:
        return None
    return MetricsRegistry(buckets=config.obs.histogram_buckets)


def write_metrics(registry, args: argparse.Namespace) -> None:
    """Export the registry per ``--metrics`` / ``--metrics-format``."""
    import sys

    target = getattr(args, "metrics", None)
    if target is None or registry is None:
        return
    if getattr(args, "metrics_format", "prom") == "json":
        from repro.obs.export import render_json

        text = render_json(registry)
    else:
        text = registry.render_prometheus()
    if target == "-":
        sys.stdout.write(text)
    else:
        with open(target, "w") as handle:
            handle.write(text)


def add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_out",
        help="record a span trace (per-interval stage timings, "
        "assembler events, worker shards) and write it to PATH when "
        "the run completes; '-' writes to stdout",
    )
    parser.add_argument(
        "--trace-format", choices=("jsonl", "chrome", "text"),
        default=None,
        help="trace export format: one canonical-JSON span per line, "
        "Chrome trace-event JSON (load in Perfetto), or a "
        "human-readable span tree (default: jsonl)",
    )


def build_tracer(args: argparse.Namespace, config):
    """A real tracer when the run wants one, else ``None``.

    ``--trace PATH`` or a run config with ``[obs] trace_path`` turns
    span tracing on; everything else runs against the no-op tracer
    (chosen downstream when this returns ``None``).
    """
    from repro.obs.trace import Tracer

    if (
        getattr(args, "trace_out", None) is None
        and config.obs.trace_path is None
    ):
        return None
    return Tracer()


def write_trace(tracer, args: argparse.Namespace, config) -> None:
    """Export the trace per ``--trace`` / ``--trace-format``, falling
    back to the config's ``[obs] trace_path/trace_format`` keys."""
    import sys

    if tracer is None:
        return
    target = getattr(args, "trace_out", None) or config.obs.trace_path
    if target is None:
        return
    fmt = (
        getattr(args, "trace_format", None)
        or config.obs.trace_format
        or "jsonl"
    )
    from repro.obs.trace import render_trace

    text = render_trace(tracer, fmt)
    if target == "-":
        sys.stdout.write(text)
    else:
        with open(target, "w") as handle:
            handle.write(text)


def add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=positive_int, default=1,
                        action=TrackedAction,
                        help="worker count; > 1 enables the parallel "
                        "partitioned engine")
    parser.add_argument("--backend", choices=EXECUTOR_BACKENDS,
                        default="thread", action=TrackedAction,
                        help="executor backend used when --jobs > 1")


# ----------------------------------------------------------------------
# Config resolution
# ----------------------------------------------------------------------
#: argparse dest -> where the value lands in ExtractionConfig.
_CONFIG_DESTS: dict[str, tuple[str, str | None]] = {
    "clones": ("detector", "clones"),
    "bins": ("detector", "bins"),
    "votes": ("detector", "vote_threshold"),
    "training": ("detector", "training_intervals"),
    "features": ("features", None),
    "min_support": ("flat", "min_support"),
    "prefilter": ("flat", "prefilter_mode"),
    "miner": ("flat", "miner"),
    "jobs": ("flat", "jobs"),
    "backend": ("flat", "backend"),
    "partitions": ("flat", "partitions"),
    "window": ("flat", "window_intervals"),
    "max_delay": ("flat", "max_delay_seconds"),
    "max_pending": ("flat", "max_pending_intervals"),
    "keep_extractions": ("flat", "keep_extractions"),
    "store": ("flat", "store_path"),
}


def extraction_config(
    args: argparse.Namespace,
    file_data: dict | None = None,
) -> ExtractionConfig:
    """The pipeline config for a subcommand's parsed arguments.

    Without ``--config`` every flag value applies (defaults included) -
    exactly the pre-redesign behavior.  With ``--config`` the TOML file
    is the base and only flags the user explicitly typed override it.
    Flags the subcommand doesn't define are simply absent from the
    namespace and skipped, so one builder serves detect, extract,
    stream, and fleet.

    ``file_data`` lets a caller that already parsed (and possibly
    pruned - the ``fleet`` subcommand pops its ``[fleet]`` table) the
    run config pass the raw sections in, so the file is read once.
    """
    config_path = getattr(args, "config", None)
    if file_data is None and config_path:
        file_data = load_toml_data(config_path)
    if file_data is not None:
        raw = file_data
        try:
            base = ExtractionConfig.from_dict(raw)
        except ConfigError as exc:
            raise ConfigError(f"{config_path}: {exc}") from exc
        # Stash the raw keys for config_file_sets: one read, one parse.
        args._config_raw = raw
        chosen = explicit_dests(args)
    else:
        base = ExtractionConfig()
        chosen = None  # no file: every flag (defaults included) applies
    detector_overrides: dict[str, object] = {}
    flat_overrides: dict[str, object] = {}
    features = None
    for dest, (kind, field) in _CONFIG_DESTS.items():
        if not hasattr(args, dest):
            continue
        if chosen is not None and dest not in chosen:
            continue
        value = getattr(args, dest)
        if kind == "detector":
            detector_overrides[field] = value
        elif kind == "features":
            if value is not None:
                features = value
        else:
            flat_overrides[field] = value
    detector = (
        dataclasses.replace(base.detector, **detector_overrides)
        if detector_overrides
        else base.detector
    )
    kwargs: dict[str, object] = {"detector": detector}
    if features is not None:
        kwargs["features"] = features
    return base.replace(**kwargs, **flat_overrides)


def config_file_sets(
    args: argparse.Namespace, section: str, key: str
) -> bool:
    """Whether the ``--config`` file explicitly sets ``[section] key``.

    Used for knobs whose CLI default differs from the library default
    (``stream`` drops extractions unless asked to keep them): an
    explicit file value must still win over the CLI's weak default.
    Reads the raw keys :func:`extraction_config` stashed when it parsed
    the file - the file is never opened twice.
    """
    raw = getattr(args, "_config_raw", None) or {}
    section_data = raw.get(section)
    return isinstance(section_data, dict) and key in section_data
