"""RPR001 - sqlite operations stay inside the IncidentError envelope.

ISSUE 3's review rounds repeatedly caught raw ``sqlite3.Error``
escaping :mod:`repro.incidents.store` and crashing the CLI's
"error: ..." exit-2 contract.  The envelope is lexical: every database
call in a sqlite-importing module must sit under either

* ``with self._wrap_db_errors():`` (the store's wrapping helper), or
* a ``try`` whose handler raises ``IncidentError``,

within the same function.  Calling a wrapped helper from a wrapped
caller does NOT count - the helper itself must carry the envelope, so
a new call site can never re-introduce the leak.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.engine import Rule
from repro.devtools.findings import Finding
from repro.devtools.project import ModuleInfo

#: Methods that hit the database when called on a connection/cursor.
DB_METHODS = frozenset(
    {"execute", "executemany", "executescript", "commit", "rollback"}
)

_WRAPPER_NAME = "_wrap_db_errors"
_ENVELOPE_EXCEPTION = "IncidentError"


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_db_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in DB_METHODS:
        return True
    return func.attr == "connect" and _terminal_name(func.value) == "sqlite3"


def _is_wrapper_with(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and _terminal_name(
            expr.func
        ) == _WRAPPER_NAME:
            return True
    return False


def _handler_raises_envelope(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if _terminal_name(exc) == _ENVELOPE_EXCEPTION:
                return True
    return False


class ErrorEnvelopeRule(Rule):
    code = "RPR001"
    name = "error-envelope"
    summary = (
        "sqlite3/cursor operations must be lexically inside the "
        "IncidentError wrapping helper or a try raising IncidentError"
    )

    def start_module(self, module: ModuleInfo) -> None:
        self._active = any(
            isinstance(node, ast.Import)
            and any(alias.name == "sqlite3" for alias in node.names)
            or isinstance(node, ast.ImportFrom)
            and node.module == "sqlite3"
            for node in ast.walk(module.tree)
        )

    def visit_Call(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Finding]:
        if not self._active or not _is_db_call(node):
            return
        if self._shielded(module, node):
            return
        assert isinstance(node.func, ast.Attribute)
        yield Finding(
            path=module.rel,
            line=node.lineno,
            col=node.col_offset,
            code=self.code,
            message=(
                f"database call .{node.func.attr}() escapes the "
                f"IncidentError envelope; wrap it in "
                f"'with self.{_WRAPPER_NAME}():' or a try/except that "
                f"raises {_ENVELOPE_EXCEPTION}"
            ),
        )

    @staticmethod
    def _shielded(module: ModuleInfo, node: ast.Call) -> bool:
        for parent, child in module.ancestors(node):
            if isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                # The envelope must live inside the same function.
                return False
            if isinstance(parent, ast.With) and _is_wrapper_with(parent):
                return True
            if isinstance(parent, ast.Try):
                # Only code in the guarded body (or else) is shielded -
                # a db call inside the handler itself is not.
                in_body = child in parent.body or child in parent.orelse
                if in_body and any(
                    _handler_raises_envelope(handler)
                    for handler in parent.handlers
                ):
                    return True
        return False
