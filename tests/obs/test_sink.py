"""MetricsSink: interval-close snapshots teed to JSONL."""

import io
import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import MetricsSink


def test_one_snapshot_per_interval(tmp_path):
    registry = MetricsRegistry()
    counter = registry.counter("repro_rows_total")
    path = tmp_path / "metrics.jsonl"
    with MetricsSink(path, registry) as sink:
        counter.inc(10)
        sink.note_interval(0)
        counter.inc(5)
        sink.note_interval(1)
        assert sink.snapshots == 2
    lines = path.read_text().splitlines()
    docs = [json.loads(line) for line in lines]
    assert [d["interval"] for d in docs] == [0, 1]
    values = [
        d["metrics"]["metrics"][0]["samples"][0]["value"] for d in docs
    ]
    assert values == [10, 15]


def test_append_counts_reports_without_persisting_them(tmp_path):
    registry = MetricsRegistry()
    sink = MetricsSink(tmp_path / "metrics.jsonl", registry)
    sink.append(object())
    sink.append(object())
    assert sink.appended == 2
    sink.close()
    assert (tmp_path / "metrics.jsonl").read_text() == ""


def test_borrowed_handle_not_closed():
    handle = io.StringIO()
    registry = MetricsRegistry()
    with MetricsSink(handle, registry) as sink:
        sink.note_interval(3)
    assert not handle.closed
    assert json.loads(handle.getvalue())["interval"] == 3
