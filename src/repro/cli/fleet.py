"""``repro-extract fleet`` - route one trace across many pipelines.

One Fig. 3 pipeline per monitored link, all behind a single router and
one shared worker pool (:class:`~repro.fleet.manager.FleetManager`).
Per-pipeline reports land in per-pipeline incident stores
(``--store-dir``, or in-memory stores for a one-shot run), and the
final output is the fleet-wide merged incident ranking.
"""

from __future__ import annotations

import argparse
import json

from repro.cli._common import (
    GracefulInterrupt,
    TrackedTrueAction,
    add_config_arg,
    add_detector_args,
    add_format_arg,
    add_metrics_args,
    add_mining_args,
    add_parallel_args,
    add_trace_args,
    build_metrics_registry,
    build_tracer,
    chunk_source,
    config_file_sets,
    explicit_dests,
    extraction_config,
    interrupt_guard,
    positive_int,
    write_metrics,
    write_trace,
)
from repro.core.config import FleetSettings, split_fleet_data
from repro.errors import ConfigError
from repro.fleet import FleetManager
from repro.flows.io import DEFAULT_CHUNK_ROWS
from repro.obs.log import get_logger

#: Routing spec used when neither ``--route`` nor the run config names
#: one: hash-shard destination IPs across the pipelines.
DEFAULT_ROUTE_COLUMN = "dst_ip"


def add_parser(sub: argparse._SubParsersAction) -> None:
    fleet = sub.add_parser(
        "fleet",
        help="multi-pipeline extraction: route a CSV trace or stdin "
        "('-') across N per-link pipelines",
    )
    fleet.add_argument("trace",
                       help="path to a .csv trace, or '-' for stdin")
    add_config_arg(fleet)
    add_detector_args(fleet)
    add_mining_args(fleet)
    add_parallel_args(fleet)
    fleet.add_argument("--chunk-rows", type=positive_int,
                       default=DEFAULT_CHUNK_ROWS,
                       help="flows parsed per chunk (bounds parser memory)")
    fleet.add_argument("--origin", type=float, default=0.0,
                       help="timestamp of interval 0")
    fleet.add_argument("--pipelines", type=positive_int, default=None,
                       metavar="N",
                       help="run N generated pipelines (link0..linkN-1) "
                       "on the base config; mutually exclusive with "
                       "[fleet.pipelines.<name>] sections in --config")
    fleet.add_argument("--route", default=None, metavar="SPEC",
                       help="routing spec: a flow column ('dst_ip'), a "
                       "'column%%N' shard, or a registered router "
                       f"(default: {DEFAULT_ROUTE_COLUMN} hash-sharded "
                       "over the pipelines)")
    fleet.add_argument("--store-dir", default=None, metavar="DIR",
                       help="directory of per-pipeline incident stores "
                       "(<name>.db, created if missing); default: "
                       "in-memory stores, queried then discarded")
    fleet.add_argument("--profile", default="balanced",
                       help="incident ranking weight profile "
                       "(balanced, volume, campaign)")
    fleet.add_argument("--top", type=positive_int, default=None,
                       help="print only the K best-ranked fleet incidents")
    fleet.add_argument("--keep-extractions", default=False,
                       action=TrackedTrueAction,
                       help="retain every extraction result in memory for "
                       "the whole run (the library default; the CLI only "
                       "reads counters and the incident stores, so "
                       "unbounded noisy pipes run flat without it)")
    add_format_arg(
        fleet,
        json_help="one JSON document for the whole run (per-pipeline "
        "summaries + merged incident ranking)",
    )
    add_metrics_args(fleet)
    add_trace_args(fleet)
    fleet.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    file_data = None
    fleet_data = None
    if args.config:
        fleet_data, file_data = split_fleet_data(args.config)
    base = extraction_config(args, file_data=file_data)
    try:
        settings = FleetSettings.from_data(fleet_data, base)
    except ConfigError as exc:
        raise ConfigError(f"{args.config}: {exc}") from exc
    route = args.route if args.route is not None else settings.route
    if route is None:
        route = DEFAULT_ROUTE_COLUMN
    store_dir = (
        args.store_dir if args.store_dir is not None else settings.store_dir
    )
    configs = settings.pipeline_configs()
    if args.pipelines is not None:
        if configs:
            raise ConfigError(
                "both --pipelines and [fleet.pipelines.<name>] sections "
                "given; configure the fleet in one place"
            )
        configs = {f"link{i}": base for i in range(args.pipelines)}
    if not configs:
        raise ConfigError(
            "no pipelines configured: pass --pipelines N or add "
            "[fleet.pipelines.<name>] sections to --config"
        )
    configs = _weak_default_retention(args, fleet_data, configs)
    registry = build_metrics_registry(args, base)
    tracer = build_tracer(args, base)
    chunks = chunk_source(
        args.trace, args.chunk_rows, command="fleet", metrics=registry
    )
    with FleetManager(
        configs,
        route=route,
        interval_seconds=args.interval_seconds,
        origin=args.origin,
        seed=args.seed,
        store_dir=store_dir,
        metrics=registry,
        tracer=tracer,
    ) as fleet:
        interrupted: GracefulInterrupt | None = None
        try:
            # Guard only the feed loop: an interrupt stops ingesting,
            # but finish() below still flushes every pipeline, so the
            # ranking/stores/--metrics/--trace cover everything routed
            # before the signal.
            with interrupt_guard():
                for chunk in chunks:
                    fleet.feed(chunk)
        except GracefulInterrupt as exc:
            interrupted = exc
            get_logger("cli.fleet").info(
                "%s; flushing pipelines and saving output", exc
            )
        results = fleet.finish()
        incidents = fleet.incidents(profile=args.profile, top=args.top)
        if args.format == "json":
            print(json.dumps(_document(fleet, results, incidents)))
            _summary(results)
        else:
            for line in _render_table(results, incidents):
                print(line)
    # After the with-block so the fleet.run root span is ended.
    write_metrics(registry, args)
    write_trace(tracer, args, base)
    return interrupted.exit_code if interrupted is not None else 0


def _weak_default_retention(args, fleet_data, configs):
    """The CLI's weak default, mirroring ``stream``: this command only
    reads counters and the incident stores, so retaining every
    extraction (each pinning its prefiltered flow table, per pipeline)
    would only grow.  An explicit ``--keep-extractions``, a base
    ``[streaming] keep_extractions``, or a per-pipeline override still
    wins."""
    if "keep_extractions" in explicit_dests(args):
        return configs
    base_sets = config_file_sets(args, "streaming", "keep_extractions")
    raw_pipelines = (
        fleet_data.get("pipelines", {})
        if isinstance(fleet_data, dict)
        else {}
    )
    adjusted = {}
    for name, config in configs.items():
        pipeline_raw = raw_pipelines.get(name)
        pipeline_sets = (
            isinstance(pipeline_raw, dict)
            and isinstance(pipeline_raw.get("streaming"), dict)
            and "keep_extractions" in pipeline_raw["streaming"]
        )
        if base_sets or pipeline_sets:
            adjusted[name] = config
        else:
            adjusted[name] = config.replace(keep_extractions=False)
    return adjusted


def _document(fleet, results, incidents) -> dict:
    doc = {"pipelines": {}, "incidents": [i.to_dict() for i in incidents]}
    for name, result in results.items():
        store = fleet.extractor(name).store
        doc["pipelines"][name] = {
            "intervals": result.intervals,
            "flows": result.flows,
            "extractions": result.extraction_count,
            "late_dropped": result.late_dropped,
            "store": (
                None
                if store is None or store.path == ":memory:"
                else store.path
            ),
        }
    return doc


def _summary(results) -> None:
    total_flows = sum(r.flows for r in results.values())
    total_extractions = sum(r.extraction_count for r in results.values())
    # Through the structured logger (stderr): stdout carries the JSON
    # document only, and embedding applications can re-route the line.
    get_logger("cli.fleet").info(
        "%s pipelines, %s flows, %s extractions",
        len(results), total_flows, total_extractions,
    )


def _render_table(results, incidents):
    for name, result in results.items():
        line = (
            f"{name}: {result.intervals} intervals, {result.flows} flows, "
            f"{result.extraction_count} extractions"
        )
        if result.late_dropped:
            line += f", {result.late_dropped} late flows dropped"
        yield line
    if not incidents:
        yield "no incidents"
        return
    yield ""
    yield f"fleet incidents ({len(incidents)}):"
    for entry in incidents:
        yield entry.render()
