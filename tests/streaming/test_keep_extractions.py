"""Bounded extraction retention (`streaming.keep_extractions=False`).

Closes the ROADMAP open item: with both `keep_reports=False` and
`keep_extractions=False` a noisy unbounded pipe holds no per-interval
state for longer than one chunk round - emitted extractions (each
pinning its prefiltered FlowTable) and their report state are evicted
once the caller has had the chance to consume them.
"""

import pytest

from repro.core import ExtractionConfig
from repro.core.session import run_session
from repro.flows import split_intervals
from repro.streaming import StreamingExtractor

_CONFIG = dict(
    detector={"bins": 256, "training_intervals": 16},
    min_support=300,
)


def _chunks(trace):
    return [view.flows for view in split_intervals(trace.flows, 900.0)]


class TestKeepExtractionsFalse:
    def test_emitted_results_match_the_retained_run(self, ddos_trace):
        kept, dropped = [], []
        with StreamingExtractor(
            ExtractionConfig(**_CONFIG),
            seed=1, interval_seconds=900.0,
        ) as retaining:
            for chunk in _chunks(ddos_trace):
                kept.extend(retaining.process_chunk(chunk))
            kept.extend(retaining.flush())
            retained = retaining.result()
        with StreamingExtractor(
            ExtractionConfig(keep_extractions=False, **_CONFIG),
            seed=1, interval_seconds=900.0,
        ) as flat:
            for chunk in _chunks(ddos_trace):
                dropped.extend(
                    e.render() for e in flat.process_chunk(chunk)
                )
            dropped.extend(e.render() for e in flat.flush())
            summary = flat.result()
        # Same pipeline output, chunk by chunk...
        assert dropped == [e.render() for e in kept]
        # ...but nothing retained: counters only.
        assert summary.extractions == []
        assert summary.extraction_count == len(kept)
        assert retained.extraction_count == len(kept)
        assert summary.intervals == retained.intervals
        assert summary.flows == retained.flows

    def test_state_evicted_after_next_chunk(self, ddos_trace):
        from repro.errors import ExtractionError

        with StreamingExtractor(
            ExtractionConfig(keep_extractions=False, **_CONFIG),
            seed=1, interval_seconds=900.0,
        ) as streamer:
            emitted = []
            for chunk in _chunks(ddos_trace):
                results = streamer.process_chunk(chunk)
                for extraction in results:
                    # Within the same round the report is available...
                    assert streamer.report_for(extraction) is not None
                emitted.extend(results)
            streamer.flush()
            assert streamer.extractions == []
            # ...but state does not accumulate across rounds: at most
            # the last batch is pinned.
            assert len(streamer._report_state) <= 1
            first = emitted[0]
            with pytest.raises(ExtractionError, match="unknown extraction"):
                streamer.report_for(first)

    def test_sink_still_receives_every_report(self, ddos_trace):
        from repro.sinks import MemorySink

        sink = MemorySink()
        with StreamingExtractor(
            ExtractionConfig(keep_extractions=False, **_CONFIG),
            seed=1, interval_seconds=900.0, sink=sink,
        ) as streamer:
            result = run_session(streamer.session, _chunks(ddos_trace))
        assert result.extraction_count > 0
        assert len(sink.reports) == result.extraction_count
        assert sink.last_interval == result.intervals - 1

    def test_default_retains_for_batch_parity(self, ddos_trace):
        with StreamingExtractor(
            ExtractionConfig(**_CONFIG), seed=1, interval_seconds=900.0
        ) as streamer:
            result = run_session(streamer.session, _chunks(ddos_trace))
        assert result.extractions
        assert result.extraction_count == len(result.extractions)
