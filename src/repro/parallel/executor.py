"""Pluggable executor layer for the partitioned extraction engine.

Three interchangeable backends expose the same two-method surface
(``map`` + ``close``), so every parallel code path in the library - the
SON miner, the parallel detector bank, the benchmarks - runs unchanged
on any of them:

* ``serial`` - plain in-process loop; deterministic, zero overhead, the
  backend the test suite uses to pin down semantics.
* ``thread`` - :class:`concurrent.futures.ThreadPoolExecutor`; the
  numpy-heavy kernels (tidset intersection, hashing, histogram updates)
  release the GIL, so threads give real speedup without pickling.
* ``process`` - :class:`concurrent.futures.ProcessPoolExecutor`; full
  CPU parallelism for pure-Python-bound work at the cost of pickling
  the shards (every payload type in this library pickles cleanly).

Worker functions submitted through the layer must be module-level
callables taking a single argument, which keeps them picklable for the
process backend.
"""

from __future__ import annotations

import os
import time
import weakref
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, TypeVar

from repro.errors import ConfigError

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Names accepted by :func:`get_executor` and the ``backend`` config knob.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit value, or every core the machine has."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1: {jobs}")
    return jobs


class Executor:
    """Common surface of the three backends.

    ``map`` preserves input order and propagates worker exceptions to
    the caller; ``close`` releases pool resources (idempotent).  All
    backends are usable as context managers.
    """

    backend: str = "abstract"
    jobs: int = 1

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """In-process reference backend (also the ``jobs=1`` fast path)."""

    backend = "serial"
    jobs = 1

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Shared plumbing of the two pool-backed executors."""

    def __init__(self, jobs: int | None = None):
        self.jobs = resolve_jobs(jobs)
        self._pool = self._make_pool(self.jobs)
        self._closed = False
        # Safety net for callers that drop the executor without close():
        # shut the pool down when the executor is garbage-collected so
        # worker processes/threads don't accumulate across a batch loop.
        self._finalizer = weakref.finalize(
            self, self._pool.shutdown, wait=False
        )

    def _make_pool(self, jobs: int):
        raise NotImplementedError

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        if self._closed:
            raise ConfigError(f"{self.backend} executor already closed")
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if not self._closed:
            self._finalizer.detach()
            self._pool.shutdown(wait=True)
            self._closed = True


class ThreadExecutor(_PoolExecutor):
    """Thread pool; best default for the numpy-bound hot paths."""

    backend = "thread"

    def _make_pool(self, jobs: int):
        return ThreadPoolExecutor(max_workers=jobs)


class ProcessExecutor(_PoolExecutor):
    """Process pool; payloads and worker functions must pickle."""

    backend = "process"

    def _make_pool(self, jobs: int):
        return ProcessPoolExecutor(max_workers=jobs)


class MeteredExecutor(Executor):
    """Wrap an executor and meter its ``map`` calls into a registry.

    Metering happens at the *map* level - tasks dispatched and busy
    wall-clock per call - rather than per task: the process backend
    requires module-level picklable worker functions, so per-task
    closure wrappers are off the table.  The wrapped executor is used
    (and closed) through the same two-method surface.
    """

    def __init__(self, inner: Executor, registry) -> None:
        self._inner = inner
        self.jobs = inner.jobs
        self._tasks = registry.counter(
            "repro_parallel_tasks_total",
            "Tasks dispatched through the parallel executor.",
            ("backend",),
        ).labels(inner.backend)
        self._busy = registry.counter(
            "repro_parallel_busy_seconds_total",
            "Wall-clock seconds the executor spent inside map calls.",
            ("backend",),
        ).labels(inner.backend)
        registry.gauge(
            "repro_parallel_jobs",
            "Configured worker count of the parallel executor.",
            ("backend",),
        ).labels(inner.backend).set(inner.jobs)

    @property
    def backend(self) -> str:
        return self._inner.backend

    @property
    def inner(self) -> Executor:
        return self._inner

    @property
    def _closed(self) -> bool:
        # "Released" tracks the wrapped pool; serial backends hold no
        # pool, so they count as closed the moment close() is a no-op.
        return getattr(self._inner, "_closed", True)

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        start = time.perf_counter()
        try:
            return self._inner.map(fn, items)
        finally:
            self._tasks.inc(len(items))
            self._busy.inc(time.perf_counter() - start)

    def close(self) -> None:
        self._inner.close()


def get_executor(backend: str = "serial", jobs: int | None = None) -> Executor:
    """Build an executor by backend name.

    Args:
        backend: one of :data:`EXECUTOR_BACKENDS`.
        jobs: worker count; ``None`` means ``os.cpu_count()``.  Ignored
            by the serial backend.
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(jobs)
    if backend == "process":
        return ProcessExecutor(jobs)
    raise ConfigError(
        f"unknown executor backend {backend!r}; "
        f"choose from {EXECUTOR_BACKENDS}"
    )
