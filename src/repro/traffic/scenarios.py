"""Canned evaluation scenarios mirroring the paper's experiments.

Each scenario builds a labelled workload that one or more benchmarks
consume:

* :func:`table2_interval` — the running Apriori example of Table II
  (flooding on dstPort 7000 plus the three most frequent "benign" ports).
* :func:`two_week_schedule` / :func:`two_week_trace` — the Table IV
  ground truth: 36 events of seven classes placed in 31 distinct
  15-minute intervals across two weeks.
* :func:`two_day_trace` — the Fig. 4 slice: two days with a couple of
  anomalies to show KL spikes over the diurnal baseline.

All flow counts are scaled from the paper's SWITCH link by the
``scale`` argument (default 1/20) so experiments are laptop-sized; the
scale is carried in the returned metadata so benchmark output can state
it next to every number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies import (
    BackscatterInjector,
    DDoSInjector,
    EventSchedule,
    FloodingInjector,
    NetworkExperimentInjector,
    SasserLikeWorm,
    ScanInjector,
    SpamInjector,
    UnknownInjector,
)
from repro.errors import ConfigError
from repro.flows.stream import DEFAULT_INTERVAL_SECONDS
from repro.flows.table import FlowTable
from repro.traffic.generator import GeneratedTrace, TraceGenerator
from repro.traffic.profiles import TrafficProfile, switch_like

#: Paper-scale flow counts for the Table II example (Section II-B).
TABLE2_PAPER_COUNTS = {
    "flooding_dport_7000": 53_467,
    "port_80": 252_069,
    "port_9022": 22_667,
    "port_25": 22_659,
    "total": 350_872,
    "min_support": 10_000,
}

#: Occurrences per class in the two-week ground truth.  The extended
#: paper reports 36 events of seven classes in 31 anomalous intervals;
#: the per-class split below follows the class ordering of Table IV with
#: scanning as the most common class, and sums to 36.
TABLE4_OCCURRENCES = {
    "flooding": 5,
    "backscatter": 5,
    "network_experiment": 3,
    "ddos": 5,
    "scanning": 10,
    "spam": 4,
    "unknown": 4,
}

#: Canonical (paper-scale) flows per event of each class; multiplied by
#: ``scale`` when the schedule is built.  DDoS is by far the largest
#: class, as in Table IV.
TABLE4_CLASS_FLOWS = {
    "flooding": 55_000,
    "backscatter": 23_000,
    "network_experiment": 30_000,
    "ddos": 550_000,
    "scanning": 21_000,
    "spam": 25_000,
    "unknown": 15_000,
}


@dataclass(frozen=True)
class Table2Scenario:
    """The Table II workload: input flow set plus component bookkeeping."""

    flows: FlowTable
    min_support: int
    scale: float
    component_counts: dict[str, int]
    proxy_hosts: tuple[int, int, int]
    flooding_victim: int


def _proxy_http_flows(
    rng: np.random.Generator,
    proxies: np.ndarray,
    n: int,
    t0: float,
    t1: float,
    profile: TrafficProfile,
) -> FlowTable:
    """Benign port-80 traffic concentrated on a few proxy/cache hosts.

    Mirrors hosts A, B, C of Table II: they alone "sent a lot of traffic
    on destination port 80", producing {srcIP, dstPort=80} 2-item-sets.
    """
    from repro.flows.record import PROTO_TCP

    shares = np.array([0.38, 0.33, 0.29])
    owners = rng.choice(len(proxies), size=n, p=shares)
    src = proxies[owners].astype(np.uint64)
    dst = rng.integers(0x0B000000, 0x0B000000 + (1 << 20), size=n, dtype=np.uint64)
    packets = 1 + np.floor(rng.pareto(1.4, size=n) * 3.0).astype(np.int64)
    packets = np.clip(packets, 1, 10_000).astype(np.uint64)
    return FlowTable.from_arrays(
        src_ip=src,
        dst_ip=dst,
        src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
        dst_port=np.full(n, 80, dtype=np.uint64),
        protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
        packets=packets,
        bytes_=packets * rng.integers(200, 1400, size=n).astype(np.uint64),
        start=rng.uniform(t0, t1, size=n),
    )


def _smtp_flows(
    rng: np.random.Generator,
    servers: np.ndarray,
    n: int,
    t0: float,
    t1: float,
) -> FlowTable:
    """Benign SMTP traffic to a pool of mail servers (dstPort 25)."""
    from repro.flows.record import PROTO_TCP

    src = rng.integers(0x0B000000, 0x0BFFFFFF, size=n, dtype=np.uint64)
    dst = servers[rng.integers(0, len(servers), size=n)].astype(np.uint64)
    packets = rng.integers(5, 25, size=n).astype(np.uint64)
    return FlowTable.from_arrays(
        src_ip=src,
        dst_ip=dst,
        src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
        dst_port=np.full(n, 25, dtype=np.uint64),
        protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
        packets=packets,
        bytes_=packets * rng.integers(100, 900, size=n).astype(np.uint64),
        start=rng.uniform(t0, t1, size=n),
    )


def table2_interval(scale: float = 0.1, seed: int = 42) -> Table2Scenario:
    """Build the Table II input set ``F`` at a given scale.

    The paper filtered one 15-minute interval where dstPort 7000 was the
    only flagged feature (53 467 flows) and *artificially added* the
    flows of the three most popular destination ports (80, 9022, 25) to
    force false-positive item-sets.  We reconstruct exactly that mix:

    * flooding of victim E on dstPort 7000 (labelled anomalous);
    * port-80 traffic of three proxy hosts A, B, C (benign);
    * port-9022 backscatter (anomalous — flagged in an earlier interval,
      per the paper narrative);
    * port-25 SMTP traffic (benign).
    """
    if not 0 < scale <= 1.0:
        raise ConfigError(f"scale must be in (0, 1]: {scale}")
    rng = np.random.default_rng(seed)
    profile = switch_like()
    base = profile.internal_base
    victim = base + 77
    proxies = np.array([base + 1, base + 2, base + 3], dtype=np.uint64)
    mailservers = (base + np.arange(10, 200)).astype(np.uint64)
    t0, t1 = 0.0, DEFAULT_INTERVAL_SECONDS

    n_flood = max(1, int(TABLE2_PAPER_COUNTS["flooding_dport_7000"] * scale))
    n_http = max(1, int(TABLE2_PAPER_COUNTS["port_80"] * scale))
    n_backscatter = max(1, int(TABLE2_PAPER_COUNTS["port_9022"] * scale))
    n_smtp = max(1, int(TABLE2_PAPER_COUNTS["port_25"] * scale))

    flooding = FloodingInjector(
        victim_ip=int(victim),
        attacker_ips=[0x0C00_0101, 0x0C00_0202, 0x0C00_0303, 0x0C00_0404],
        target_port=7000,
        flows=n_flood,
    ).generate(rng, t0, t1 - t0, label=0)
    backscatter = BackscatterInjector(
        dst_port=9022, flows=n_backscatter, dest_space_start=int(base)
    ).generate(rng, t0, t1 - t0, label=1)
    http = _proxy_http_flows(rng, proxies, n_http, t0, t1, profile)
    smtp = _smtp_flows(rng, mailservers, n_smtp, t0, t1)

    flows = FlowTable.concat([flooding, http, backscatter, smtp]).sort_by_start()
    return Table2Scenario(
        flows=flows,
        min_support=max(2, int(TABLE2_PAPER_COUNTS["min_support"] * scale)),
        scale=scale,
        component_counts={
            "flooding_dport_7000": n_flood,
            "port_80": n_http,
            "port_9022": n_backscatter,
            "port_25": n_smtp,
            "total": len(flows),
        },
        proxy_hosts=(int(proxies[0]), int(proxies[1]), int(proxies[2])),
        flooding_victim=int(victim),
    )


def _class_injector(
    kind: str,
    rng: np.random.Generator,
    profile: TrafficProfile,
    flows: int,
):
    """Instantiate an injector of the given class with randomized actors."""
    base = profile.internal_base
    pick_internal = lambda: int(base + rng.integers(0, profile.internal_hosts))
    pick_external = lambda: int(0x0C000000 + rng.integers(0, 1 << 24))
    if kind == "flooding":
        return FloodingInjector(
            victim_ip=pick_internal(),
            attacker_ips=[pick_external() for _ in range(int(rng.integers(2, 6)))],
            target_port=int(rng.choice([7000, 6667, 8000, 5060])),
            flows=flows,
        )
    if kind == "backscatter":
        return BackscatterInjector(
            dst_port=int(rng.choice([9022, 27015, 50100, 3074])),
            flows=flows,
            dest_space_start=int(base),
            dest_space_size=profile.internal_hosts,
        )
    if kind == "network_experiment":
        return NetworkExperimentInjector(
            node_ip=pick_internal(),
            probe_port=int(rng.choice([33434, 33435, 40000])),
            source_port=int(rng.integers(30000, 34000)),
            flows=flows,
        )
    if kind == "ddos":
        return DDoSInjector(
            victim_ip=pick_internal(),
            target_port=int(rng.choice([80, 53, 443])),
            flows=flows,
            sources=int(rng.integers(1000, 5000)),
        )
    if kind == "scanning":
        return ScanInjector(
            scanner_ips=[pick_external()],
            target_port=int(rng.choice([445, 22, 1433, 3389, 5900, 23])),
            flows=flows,
            target_space_start=int(base),
            target_space_size=profile.internal_hosts,
        )
    if kind == "spam":
        servers = [pick_internal() for _ in range(40)]
        return SpamInjector(
            spammer_ips=[pick_external() for _ in range(int(rng.integers(5, 30)))],
            mailserver_ips=servers,
            flows=flows,
        )
    if kind == "unknown":
        return UnknownInjector(
            dst_port=int(rng.choice([6881, 4662, 12000])),
            flows=flows,
            dest_space_start=int(base),
        )
    raise ConfigError(f"unknown anomaly class: {kind}")


def two_week_schedule(
    profile: TrafficProfile,
    scale: float = 0.05,
    seed: int = 7,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    n_intervals: int = 1344,
    training_intervals: int = 96,
) -> EventSchedule:
    """Place the Table IV event mix on a two-week timeline.

    36 events land in 31 *distinct* intervals (five intervals host two
    concurrent events, matching "36 different events within the 31
    anomalous intervals").  The first ``training_intervals`` intervals
    stay clean so detectors can estimate their thresholds.
    """
    if n_intervals <= training_intervals + 40:
        raise ConfigError(
            "trace too short for the two-week schedule; increase n_intervals"
        )
    rng = np.random.default_rng(seed)
    kinds: list[str] = []
    for kind, count in TABLE4_OCCURRENCES.items():
        kinds.extend([kind] * count)
    assert len(kinds) == 36
    rng.shuffle(kinds)
    # 31 distinct intervals; the first 5 of them receive a second event.
    candidates = np.arange(training_intervals + 1, n_intervals - 1)
    chosen = np.sort(rng.choice(candidates, size=31, replace=False))
    slots = list(chosen) + list(rng.choice(chosen, size=5, replace=False))
    rng.shuffle(slots)
    schedule = EventSchedule()
    for kind, slot in zip(kinds, slots):
        flows = max(10, int(TABLE4_CLASS_FLOWS[kind] * scale))
        injector = _class_injector(kind, rng, profile, flows)
        # Events span most of their interval, starting a little inside it.
        offset = float(rng.uniform(0.0, 0.2) * interval_seconds)
        duration = interval_seconds - offset - 1e-3
        schedule.add_at_interval(
            injector, int(slot), interval_seconds, duration=duration, offset=offset
        )
    return schedule


def two_week_trace(
    flows_per_interval: int = 4_000,
    scale: float = 0.05,
    seed: int = 7,
    n_intervals: int = 1344,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
) -> GeneratedTrace:
    """The full Table IV workload: two weeks, 36 events, 31 anomalous
    intervals.  ~5.4 M flows at the default scale."""
    profile = switch_like(flows_per_interval)
    schedule = two_week_schedule(
        profile,
        scale=scale,
        seed=seed,
        interval_seconds=interval_seconds,
        n_intervals=n_intervals,
    )
    generator = TraceGenerator(profile, seed=seed)
    return generator.generate(
        n_intervals, schedule=schedule, interval_seconds=interval_seconds
    )


def two_day_trace(
    flows_per_interval: int = 4_000,
    seed: int = 11,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
) -> GeneratedTrace:
    """Two days (192 intervals) with two injected events - the Fig. 4
    setting (KL time series for the source IP feature over ~2 days)."""
    profile = switch_like(flows_per_interval)
    rng = np.random.default_rng(seed)
    schedule = EventSchedule()
    ddos = _class_injector("ddos", rng, profile, flows=int(20_000 * 0.2))
    scan = _class_injector("scanning", rng, profile, flows=int(21_000 * 0.2))
    schedule.add_at_interval(
        ddos, 60, interval_seconds, duration=interval_seconds - 1.0
    )
    schedule.add_at_interval(
        scan, 150, interval_seconds, duration=interval_seconds - 1.0
    )
    generator = TraceGenerator(profile, seed=seed)
    return generator.generate(192, schedule=schedule, interval_seconds=interval_seconds)


def worm_outbreak_trace(
    flows_per_interval: int = 4_000,
    seed: int = 23,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    n_intervals: int = 12,
    outbreak_interval: int = 8,
) -> GeneratedTrace:
    """A short trace with a three-stage Sasser-like outbreak - the
    union-vs-intersection ablation workload (Section II-A)."""
    profile = switch_like(flows_per_interval)
    rng = np.random.default_rng(seed)
    infected = [
        int(0x0C000000 + rng.integers(0, 1 << 24)) for _ in range(6)
    ]
    worm = SasserLikeWorm(
        infected_ips=infected,
        scan_flows=3_000,
        backdoor_flows=1_200,
        download_flows=800,
        target_space_start=profile.internal_base,
        target_space_size=profile.internal_hosts,
    )
    schedule = EventSchedule()
    schedule.add_at_interval(
        worm,
        outbreak_interval,
        interval_seconds,
        duration=interval_seconds - 1.0,
    )
    generator = TraceGenerator(profile, seed=seed)
    return generator.generate(
        n_intervals, schedule=schedule, interval_seconds=interval_seconds
    )
