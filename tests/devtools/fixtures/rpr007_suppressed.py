"""Fixture: catalog violations silenced by noqa comments."""


def instrument(tracer, span, carrier, pick_name):
    from repro.obs.trace import worker_span

    bogus = tracer.span("stage.made_up", flows=1)  # repro: noqa[RPR007]
    dynamic = tracer.span(pick_name())  # repro: noqa[RPR007]
    tracer.event("assembler.bogus_event", rows=3)  # repro: noqa[RPR007]
    span.add_event("not.catalogued")  # repro: noqa
    record = worker_span("shard.wrong", carrier)  # repro: noqa[RPR007]
    return bogus, dynamic, record
