"""Exporters: Prometheus text exposition and canonical JSON snapshots.

Both renderings share one iteration order - families sorted by metric
name, samples sorted by label values - so output depends only on what
was observed, never on instrument creation order.  Floats render
canonically (integral values without a fraction, ``+Inf`` spelled the
Prometheus way), which is what makes snapshots byte-stable for the
equivalence tests and golden files.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "format_value",
    "render_json",
    "render_prometheus",
    "snapshot",
]


def format_value(value: float) -> str:
    """Canonical number rendering shared by both exporters."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(names: tuple[str, ...], values: tuple[str, ...],
                extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(
        f'{name}="{_escape_label_value(value)}"' for name, value in extra
    )
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _bucket_bounds(histogram: "Histogram") -> list[str]:
    return [format_value(b) for b in histogram.buckets] + ["+Inf"]


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.metric_type}")
        for values, child in family.samples():
            labels = _label_text(family.labelnames, values)
            if family.metric_type == "histogram":
                cumulative = child.cumulative_counts()
                for bound, count in zip(_bucket_bounds(child), cumulative):
                    bucket_labels = _label_text(
                        family.labelnames, values, extra=(("le", bound),)
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {count}"
                    )
                lines.append(
                    f"{family.name}_sum{labels} {format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(
                    f"{family.name}{labels} {format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: "MetricsRegistry") -> dict:
    """Canonical plain-data rendering of the registry.

    Shape::

        {"metrics": [
          {"name": ..., "type": "counter", "help": ...,
           "samples": [{"labels": {...}, "value": 3}]},
          {"name": ..., "type": "histogram", ...,
           "samples": [{"labels": {...},
                        "buckets": {"0.001": 0, ..., "+Inf": 7},
                        "sum": 1.5, "count": 7}]},
        ]}

    Families sort by name, samples by label values, bucket keys keep
    bound order - ``json.dumps(snapshot(r))`` is byte-stable.
    """
    metrics: list[dict] = []
    for family in registry.families():
        samples: list[dict] = []
        for values, child in family.samples():
            labels = dict(zip(family.labelnames, values))
            if family.metric_type == "histogram":
                cumulative = child.cumulative_counts()
                samples.append({
                    "labels": labels,
                    "buckets": dict(
                        zip(_bucket_bounds(child), cumulative)
                    ),
                    "sum": child.sum,
                    "count": child.count,
                })
            else:
                samples.append({"labels": labels, "value": child.value})
        metrics.append({
            "name": family.name,
            "type": family.metric_type,
            "help": family.help,
            "samples": samples,
        })
    return {"metrics": metrics}


def render_json(registry: "MetricsRegistry") -> str:
    """The canonical snapshot as one JSON document (trailing newline)."""
    return json.dumps(snapshot(registry), sort_keys=True) + "\n"
