"""Entropy-based detector (alternative detector, Table I context).

The paper's approach is detector-agnostic: anything that yields
per-feature meta-data can feed the extraction pipeline.  To demonstrate
the interface we include a second detector family: normalized Shannon
entropy of the hashed feature histogram (Lakhina et al. 2005; Wagner &
Plattner 2005).  It reuses the MAD threshold machinery on the entropy
first difference and localizes bins by greedy cleaning until the entropy
shift is explained.
"""

from __future__ import annotations

import numpy as np

from repro.detection.features import Feature
from repro.detection.threshold import AlarmThreshold, estimate_threshold
from repro.errors import ConfigError
from repro.flows.table import FlowTable
from repro.sketch.cloning import CloneSet
from repro.sketch.histogram import HistogramSnapshot


def normalized_entropy(counts: np.ndarray) -> float:
    """Shannon entropy of a count vector, normalized to [0, 1].

    Zero bins contribute nothing; the normalization is by ``log2(m)`` so
    values are comparable across bin counts.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or len(counts) < 2:
        raise ConfigError("entropy needs a 1-D histogram with >= 2 bins")
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum() / np.log2(len(counts)))


class EntropyDetector:
    """Single-clone entropy detector with the same observe() contract.

    Deliberately simpler than the KL detector (one clone, no voting): it
    exists to show that the extraction pipeline is detector-agnostic and
    to cross-check alarms in tests.
    """

    def __init__(
        self,
        feature: Feature,
        bins: int = 1024,
        multiplier: float = 4.0,
        training_intervals: int = 96,
        seed: int = 0,
    ):
        if training_intervals < 2:
            raise ConfigError("need >= 2 training intervals")
        self.feature = feature
        self.multiplier = multiplier
        self.training_intervals = training_intervals
        self._clones = CloneSet(1, bins, seed=seed)
        self._interval = -1
        self._prev: HistogramSnapshot | None = None
        self._prev_entropy = 0.0
        self._entropy_series: list[float] = []
        self._diff_series: list[float] = []
        self._training: list[float] = []
        self._threshold: AlarmThreshold | None = None

    @property
    def trained(self) -> bool:
        return self._threshold is not None

    def entropy_series(self) -> np.ndarray:
        return np.asarray(self._entropy_series, dtype=np.float64)

    def diff_series(self) -> np.ndarray:
        return np.asarray(self._diff_series, dtype=np.float64)

    def observe(self, flows: FlowTable) -> tuple[bool, np.ndarray]:
        """Process one interval.

        Returns:
            ``(alarm, suspicious_values)`` - suspicious values are the
            observed feature values in the bins whose cleaning restores
            the entropy to within the threshold.
        """
        self._interval += 1
        self._clones.reset()
        self._clones.update(self.feature.extract(flows))
        snapshot = self._clones.snapshots()[0]
        entropy = normalized_entropy(snapshot.counts)
        diff = entropy - self._prev_entropy if self._prev is not None else 0.0
        self._entropy_series.append(entropy)
        self._diff_series.append(diff)

        alarm = False
        suspicious = np.empty(0, dtype=np.uint64)
        if self._threshold is None:
            if self._interval >= 2:
                self._training.append(diff)
            if self._interval + 1 >= self.training_intervals:
                self._threshold = estimate_threshold(
                    np.asarray(self._training), multiplier=self.multiplier
                )
        elif self._prev is not None and abs(diff) > self._threshold.value:
            # Entropy may rise (dispersion) or fall (concentration);
            # either direction is a disruption.
            alarm = True
            suspicious = snapshot.values_in_bins(
                self._identify_bins(snapshot.counts, self._prev.counts)
            )
        self._prev = snapshot
        self._prev_entropy = entropy
        return alarm, suspicious

    def _identify_bins(
        self, current: np.ndarray, reference: np.ndarray
    ) -> list[int]:
        """Greedy cleaning until the entropy shift drops below threshold."""
        assert self._threshold is not None
        cur = np.asarray(current, dtype=np.float64).copy()
        ref = np.asarray(reference, dtype=np.float64)
        ref_entropy = normalized_entropy(ref)
        chosen: list[int] = []
        while (
            abs(normalized_entropy(cur) - ref_entropy) > self._threshold.value
            and len(chosen) < len(cur)
        ):
            diffs = np.abs(cur - ref)
            bin_idx = int(np.argmax(diffs))
            if diffs[bin_idx] == 0:
                break
            cur[bin_idx] = ref[bin_idx]
            chosen.append(bin_idx)
        return chosen
