"""SIGINT/SIGTERM during stream/fleet feeds: flush, save, exit 128+n.

The guard (``repro.cli._common.interrupt_guard``) wraps only the feed
loop, so an interrupted run still flushes the assembler, prints the
summary, and writes every requested output (``--store``, ``--metrics``,
``--trace``) before exiting with the conventional signal code.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.cli import main
from repro.cli._common import GracefulInterrupt, interrupt_guard
from repro.flows import write_csv
from repro.incidents.store import open_store


@pytest.fixture(scope="module")
def csv_trace(tmp_path_factory, ddos_trace):
    path = tmp_path_factory.mktemp("interrupt-cli") / "trace.csv"
    write_csv(ddos_trace.flows, str(path))
    return str(path)


_ARGS = ["--bins", "256", "--training", "16", "--min-support", "300"]


def interrupting_chunks(inner, after: int, signum: int):
    """Yield ``after`` chunks, then deliver a real signal to this
    process - exactly what Ctrl-C mid-pipe does."""
    for i, chunk in enumerate(inner):
        if i == after:
            os.kill(os.getpid(), signum)
            raise AssertionError("signal was not converted in the loop")
        yield chunk


class TestGuard:
    def test_converts_sigint_and_restores_handler(self):
        before = signal.getsignal(signal.SIGINT)
        with pytest.raises(GracefulInterrupt) as info:
            with interrupt_guard():
                os.kill(os.getpid(), signal.SIGINT)
        assert info.value.signum == signal.SIGINT
        assert info.value.exit_code == 130
        assert signal.getsignal(signal.SIGINT) is before

    def test_converts_sigterm(self):
        with pytest.raises(GracefulInterrupt) as info:
            with interrupt_guard():
                os.kill(os.getpid(), signal.SIGTERM)
        assert info.value.exit_code == 143

    def test_no_signal_no_effect(self):
        with interrupt_guard():
            pass


class TestStreamInterrupt:
    def run_interrupted(
        self, csv_trace, tmp_path, monkeypatch, capsys, signum
    ):
        from repro.cli import stream as stream_cli

        original = stream_cli.chunk_source

        def patched(trace, chunk_rows, command="stream", metrics=None):
            return interrupting_chunks(
                original(trace, chunk_rows, metrics=metrics),
                after=2,
                signum=signum,
            )

        monkeypatch.setattr(stream_cli, "chunk_source", patched)
        store = tmp_path / "incidents.db"
        metrics = tmp_path / "metrics.prom"
        code = main([
            "stream", csv_trace, *_ARGS,
            "--chunk-rows", "2000",
            "--store", str(store),
            "--metrics", str(metrics),
        ])
        return code, store, metrics, capsys.readouterr()

    def test_sigint_flushes_and_saves(
        self, csv_trace, tmp_path, monkeypatch, capsys
    ):
        code, store, metrics, captured = self.run_interrupted(
            csv_trace, tmp_path, monkeypatch, capsys, signal.SIGINT
        )
        assert code == 130
        assert "interrupted by SIGINT; flushed and saved" in captured.out
        # The outputs a completed run would write all still exist.
        assert metrics.exists()
        assert "repro_flows_processed_total" in metrics.read_text()
        with open_store(store, must_exist=True) as opened:
            # The flush completed the buffered intervals: the store
            # marker reflects the flows fed before the signal.
            assert opened.last_interval() is not None

    def test_sigterm_exit_code(
        self, csv_trace, tmp_path, monkeypatch, capsys
    ):
        code, _, _, captured = self.run_interrupted(
            csv_trace, tmp_path, monkeypatch, capsys, signal.SIGTERM
        )
        assert code == 143
        assert "interrupted by SIGTERM" in captured.out


class TestFleetInterrupt:
    def test_sigint_still_writes_ranking_and_stores(
        self, csv_trace, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import fleet as fleet_cli

        original = fleet_cli.chunk_source

        def patched(trace, chunk_rows, command="fleet", metrics=None):
            return interrupting_chunks(
                original(trace, chunk_rows, command=command,
                        metrics=metrics),
                after=2,
                signum=signal.SIGINT,
            )

        monkeypatch.setattr(fleet_cli, "chunk_source", patched)
        store_dir = tmp_path / "stores"
        code = main([
            "fleet", csv_trace, *_ARGS,
            "--chunk-rows", "2000",
            "--pipelines", "2",
            "--store-dir", str(store_dir),
            "--format", "json",
        ])
        assert code == 130
        captured = capsys.readouterr()
        # stdout still carries the complete JSON document (per-pipeline
        # summaries + merged ranking) for everything fed pre-signal.
        document = json.loads(captured.out)
        assert set(document["pipelines"]) == {"link0", "link1"}
        assert "incidents" in document
        assert sorted(p.name for p in store_dir.iterdir()) == [
            "link0.db", "link1.db"
        ]
