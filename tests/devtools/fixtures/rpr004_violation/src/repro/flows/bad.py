"""Layer-1 module reaching up into layer 2."""

import repro.core.stuff
