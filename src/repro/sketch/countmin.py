"""Count-Min sketch (Cormode & Muthukrishnan, reference [6] of the paper).

The paper contrasts histogram cloning with sketches: both use random
projections, but sketches target stream *summarization* while cloning
targets random *binning*.  We provide Count-Min as a substrate because it
shares the hashing infrastructure and is the natural tool for the
heavy-hitter cross-checks used in our tests and examples.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigError, SketchError
from repro.flows.table import pack_array, unpack_array
from repro.sketch.hashing import HashFamily


class CountMinSketch:
    """Point-query frequency estimator with one-sided error.

    Guarantees (standard): with width ``w = ceil(e / eps)`` and depth
    ``d = ceil(ln(1 / delta))``, the estimate for any item exceeds the
    true count by more than ``eps * N`` with probability at most
    ``delta``.
    """

    def __init__(self, width: int, depth: int, seed: int = 0):
        if width < 1:
            raise ConfigError(f"width must be >= 1: {width}")
        if depth < 1:
            raise ConfigError(f"depth must be >= 1: {depth}")
        self._width = width
        self._depth = depth
        self._seed = seed
        family = HashFamily(bins=width, seed=seed)
        self._hashes = family.take(depth)
        self._table = np.zeros((depth, width), dtype=np.int64)
        self._total = 0

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, seed: int = 0
    ) -> "CountMinSketch":
        """Build a sketch sized for additive error ``epsilon * N`` with
        failure probability ``delta``."""
        if not 0 < epsilon < 1:
            raise ConfigError(f"epsilon must be in (0, 1): {epsilon}")
        if not 0 < delta < 1:
            raise ConfigError(f"delta must be in (0, 1): {delta}")
        width = int(np.ceil(np.e / epsilon))
        depth = int(np.ceil(np.log(1.0 / delta)))
        return cls(width=width, depth=depth, seed=seed)

    @property
    def width(self) -> int:
        return self._width

    @property
    def depth(self) -> int:
        return self._depth

    @property
    def seed(self) -> int:
        """Seed of the hash family; sketches only merge on equal seeds."""
        return self._seed

    @property
    def total(self) -> int:
        """Total count of all updates (N)."""
        return self._total

    def update(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value``."""
        if count < 0:
            raise ConfigError("count-min does not support decrements")
        for row, hash_fn in enumerate(self._hashes):
            self._table[row, hash_fn(value)] += count
        self._total += count

    def update_array(self, values: np.ndarray) -> None:
        """Add one occurrence of every entry in ``values`` (vectorized)."""
        vals = np.asarray(values, dtype=np.uint64)
        if vals.size == 0:
            return
        for row, hash_fn in enumerate(self._hashes):
            bins = hash_fn.hash_array(vals)
            np.add.at(self._table[row], bins, 1)
        self._total += int(vals.size)

    def estimate(self, value: int) -> int:
        """Point query: an upper bound on the true count of ``value``."""
        return int(
            min(
                self._table[row, hash_fn(value)]
                for row, hash_fn in enumerate(self._hashes)
            )
        )

    def heavy_hitters(
        self, candidates: np.ndarray, threshold: int
    ) -> list[tuple[int, int]]:
        """Return (value, estimate) for candidates estimated above
        ``threshold``, sorted by decreasing estimate."""
        hits = []
        for value in np.asarray(candidates, dtype=np.uint64):
            est = self.estimate(int(value))
            if est >= threshold:
                hits.append((int(value), est))
        hits.sort(key=lambda pair: (-pair[1], pair[0]))
        return hits

    # ------------------------------------------------------------------
    # Federation: merge + canonical wire form
    # ------------------------------------------------------------------
    def compatible_with(self, other: "CountMinSketch") -> bool:
        """True when ``other`` uses the same table geometry and hash
        streams, i.e. cell-wise addition of the tables is meaningful."""
        return (
            self._width == other._width
            and self._depth == other._depth
            and self._seed == other._seed
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Fold ``other``'s counts into this sketch, in place.

        Count-min tables over the same hash functions are linear: the
        cell-wise sum of two tables is exactly the table of the
        concatenated streams, so merged estimates keep the standard
        ``eps * N`` guarantee with ``N`` the combined total.  Mismatched
        width/depth/seed would add counts of *unrelated* cells and
        silently fabricate frequencies, so it is refused outright.
        """
        if not self.compatible_with(other):
            raise SketchError(
                f"cannot merge count-min sketches with different "
                f"parameters: width/depth/seed "
                f"{self._width}/{self._depth}/{self._seed} vs "
                f"{other._width}/{other._depth}/{other._seed}"
            )
        self._table += other._table
        self._total += other._total

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe document for this sketch.

        Byte-stable: identical sketch state always renders the identical
        document (the packed-array encoding is deterministic), so digests
        embedding sketches are diff-able and replayable.
        """
        return {
            "width": self._width,
            "depth": self._depth,
            "seed": self._seed,
            "total": self._total,
            "table": pack_array(self._table.reshape(-1)),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "CountMinSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        try:
            sketch = cls(
                width=int(doc["width"]),
                depth=int(doc["depth"]),
                seed=int(doc["seed"]),
            )
            total = int(doc["total"])
            flat = np.asarray(unpack_array(doc["table"]), dtype=np.int64)
        except (KeyError, TypeError, ValueError) as exc:
            raise SketchError(
                f"malformed count-min document: {exc}"
            ) from exc
        if total < 0:
            raise SketchError(
                f"count-min document has negative total: {total}"
            )
        if flat.size != sketch._depth * sketch._width:
            raise SketchError(
                f"count-min table has {flat.size} cells, expected "
                f"{sketch._depth}x{sketch._width}"
            )
        sketch._table = flat.reshape(sketch._depth, sketch._width)
        sketch._total = total
        return sketch
