"""Unit tests for the detector bank."""

import pytest

from repro.detection.detector import DetectorConfig
from repro.detection.features import DETECTOR_FEATURES, Feature
from repro.detection.manager import DetectorBank
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def run(ddos_trace):
    config = DetectorConfig(
        clones=3, bins=256, vote_threshold=3, training_intervals=16
    )
    bank = DetectorBank(config, seed=1)
    return bank.run(ddos_trace.flows, ddos_trace.interval_seconds, origin=0.0)


class TestDetectorBank:
    def test_monitors_the_five_paper_features(self):
        bank = DetectorBank(DetectorConfig(training_intervals=4))
        assert set(bank.detectors) == set(DETECTOR_FEATURES)

    def test_needs_features(self):
        with pytest.raises(ConfigError):
            DetectorBank(features=())

    def test_run_covers_all_intervals(self, run, ddos_trace):
        assert run.n_intervals == ddos_trace.n_intervals

    def test_ddos_interval_alarmed(self, run, ddos_trace):
        assert 24 in run.alarm_intervals()

    def test_ddos_report_features(self, run):
        report = run.report(24)
        assert report.alarm
        # A DDoS disturbs at least dstIP; typically srcIP too.
        assert Feature.DST_IP in report.alarmed_features

    def test_metadata_contains_victim(self, run, ddos_trace, small_profile):
        victim = small_profile.internal_base + 5
        meta = run.report(24).metadata()
        assert victim in meta.get(Feature.DST_IP).tolist()

    def test_quiet_interval_produces_no_metadata(self, run):
        report = run.report(20)
        assert not report.alarm
        assert report.metadata().is_empty()

    def test_kl_series_accessible(self, run):
        series = run.kl_series(Feature.DST_IP, clone=0)
        assert len(series) == run.n_intervals
        # The DDoS spike must dominate its neighbourhood.
        assert series[24] > 3 * series[20]

    def test_sigma_positive(self, run):
        assert run.sigma(Feature.DST_IP, clone=0) > 0

    def test_alarms_at_multiplier_monotone(self, run):
        sensitive = run.interval_alarm_mask(multiplier=1.0).sum()
        strict = run.interval_alarm_mask(multiplier=8.0).sum()
        assert sensitive >= strict

    def test_alarms_never_in_training_prefix(self, run):
        mask = run.interval_alarm_mask(multiplier=0.5)
        assert not mask[: run.config.training_intervals].any()

    def test_flow_counts_recorded(self, run):
        assert run.report(24).flow_count > 0
