"""repro-lint self-check: full-tree lint stays fast and clean.

The lint gate runs on every CI push, so its wall-clock is part of the
developer loop.  This bench lints the entire ``src/repro`` tree with
the full ruleset (the exact work ``repro-lint src/repro`` does),
asserts the tree is clean, and budgets the run: one pass over the
~110-file package must finish in a couple of seconds, parse included.
"""

import os
import time

from repro.devtools import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")

#: Generous ceiling for CI boxes; the 1-CPU container does it in well
#: under a second.
BUDGET_SECONDS = 2.0


def test_selfcheck_speed_and_cleanliness(report):
    start = time.perf_counter()
    result = lint_paths([SRC], root=REPO_ROOT)
    elapsed = time.perf_counter() - start

    assert result.findings == []
    assert result.checked_files > 100
    assert elapsed < BUDGET_SECONDS

    files_per_second = result.checked_files / elapsed
    report(
        f"repro-lint self-check: {result.checked_files} files, "
        f"{len(result.rules)} rules in {elapsed * 1000:.0f} ms "
        f"({files_per_second:.0f} files/s), 0 findings",
        lint_seconds=elapsed,
        files=result.checked_files,
        rules=len(result.rules),
        files_per_second=files_per_second,
        findings=len(result.findings),
    )
