"""Unit tests for item encoding and FrequentItemset."""

import pytest

from repro.detection.features import Feature
from repro.errors import MiningError
from repro.mining.items import (
    FrequentItemset,
    decode_item,
    encode_item,
    format_item,
    item_feature,
    itemsets_sorted,
)


class TestEncoding:
    def test_round_trip_all_features(self):
        for feature in Feature:
            item = encode_item(feature, 8080)
            assert decode_item(item) == (feature, 8080)

    def test_same_value_different_feature_distinct(self):
        a = encode_item(Feature.SRC_PORT, 80)
        b = encode_item(Feature.DST_PORT, 80)
        assert a != b

    def test_item_feature(self):
        assert item_feature(encode_item(Feature.BYTES, 1500)) is Feature.BYTES

    def test_value_range_checked(self):
        with pytest.raises(MiningError):
            encode_item(Feature.BYTES, 1 << 48)
        with pytest.raises(MiningError):
            encode_item(Feature.BYTES, -1)

    def test_decode_rejects_garbage(self):
        with pytest.raises(MiningError):
            decode_item(99 << 48)

    def test_format_item(self):
        assert format_item(encode_item(Feature.DST_PORT, 80)) == "dstPort=80"
        ip_item = encode_item(Feature.SRC_IP, 167772161)
        assert format_item(ip_item) == "srcIP=10.0.0.1"


class TestFrequentItemset:
    def _itemset(self, pairs, support=10):
        items = tuple(sorted(encode_item(f, v) for f, v in pairs))
        return FrequentItemset(items=items, support=support)

    def test_size_and_dict(self):
        itemset = self._itemset([(Feature.DST_PORT, 80), (Feature.PROTOCOL, 6)])
        assert itemset.size == 2
        assert itemset.as_dict() == {Feature.DST_PORT: 80, Feature.PROTOCOL: 6}

    def test_contains(self):
        big = self._itemset(
            [(Feature.DST_PORT, 80), (Feature.PROTOCOL, 6), (Feature.PACKETS, 1)]
        )
        small = self._itemset([(Feature.DST_PORT, 80)])
        assert big.contains(small)
        assert not small.contains(big)

    def test_rejects_duplicate_feature(self):
        items = tuple(
            sorted(
                [encode_item(Feature.DST_PORT, 80),
                 encode_item(Feature.DST_PORT, 25)]
            )
        )
        with pytest.raises(MiningError, match="two items of one feature"):
            FrequentItemset(items=items, support=1)

    def test_rejects_unsorted_items(self):
        a = encode_item(Feature.SRC_IP, 5)
        b = encode_item(Feature.DST_PORT, 80)
        with pytest.raises(MiningError, match="sorted"):
            FrequentItemset(items=(max(a, b), min(a, b)), support=1)

    def test_rejects_empty(self):
        with pytest.raises(MiningError):
            FrequentItemset(items=(), support=1)

    def test_rejects_negative_support(self):
        with pytest.raises(MiningError):
            self._itemset([(Feature.DST_PORT, 80)], support=-1)

    def test_str_readable(self):
        itemset = self._itemset([(Feature.DST_PORT, 7000)], support=42)
        assert "dstPort=7000" in str(itemset)
        assert "support=42" in str(itemset)

    def test_sorted_order(self):
        a = self._itemset([(Feature.DST_PORT, 80)], support=10)
        b = self._itemset([(Feature.DST_PORT, 25)], support=99)
        c = self._itemset(
            [(Feature.DST_PORT, 81), (Feature.PROTOCOL, 6)], support=10
        )
        ordered = itemsets_sorted([a, b, c])
        assert ordered[0] is b          # highest support first
        assert ordered[1] is c          # ties broken by size descending
        assert ordered[2] is a
