"""The stable, documented facade of the repro library.

Eight verbs cover the paper's workflow end to end:

* :func:`extract` - batch extraction over a trace (file or
  :class:`~repro.flows.table.FlowTable`);
* :func:`stream` - the same pipeline chunk-by-chunk with bounded
  memory;
* :func:`session` - the push-based execution surface underneath both:
  feed chunks, collect results, finish;
* :func:`open_fleet` - N named pipelines (one per link/router) behind
  one router and one shared worker pool;
* :func:`open_store` - open/create a persistent incident store;
* :func:`rank` - correlate and rank a store's reports into triaged
  incidents;
* :func:`serve` - run a fleet as a long-lived daemon (HTTP/TCP
  ingest, incident queries, Prometheus metrics) with durable
  checkpoint/resume;
* :func:`federate` - merge multiple vantage points' sketch digests
  into one global detection and incident ranking.

Everything accepts either a ready :class:`ExtractionConfig`, a nested
dict, or a path to a TOML run config, plus flat keyword overrides::

    import repro.api as repro

    result = repro.extract("trace.npz", min_support=500)
    result = repro.extract("trace.csv", config="run.toml", jobs=4)
    summary = repro.stream("trace.csv", config="run.toml")
    for entry in repro.rank("incidents.db", top=5):
        print(entry.render())

The names re-exported here (and the four verbs) are the supported
surface; internals may move between modules, these stay.  Extension
points resolve through :mod:`repro.registry`, so a third-party miner,
reader, feature set, or sink registered there is selectable from this
facade without touching ``repro`` internals.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Mapping, Sequence
from typing import TextIO

from repro.core.config import (
    ExtractionConfig,
    FederationSettings,
    FleetSettings,
    IncidentSettings,
    MiningSettings,
    ParallelSettings,
    ServiceSettings,
    StreamingSettings,
    split_fleet_data,
    split_run_data,
)
from repro.core.pipeline import (
    AnomalyExtractor,
    ExtractionResult,
    IntervalSink,
    ReportSink,
    TraceExtraction,
)
from repro.core.report import ExtractionReport, TriagedItemset
from repro.core.session import ExtractionSession, run_session
from repro.detection.detector import DetectorConfig
from repro.detection.features import CustomFeature, Feature, resolve_features
from repro.errors import (
    CheckpointError,
    ConfigError,
    FederationError,
    ReproError,
    ServiceError,
    SketchError,
    TraceFormatError,
)
from repro.federation import (
    Collector,
    FederationResult,
    Federator,
    IntervalDigest,
    run_federation,
    split_trace,
)
from repro.federation.tier import federation_kwargs
from repro.fleet.manager import FleetIncident, FleetManager
from repro.flows.io import DEFAULT_CHUNK_ROWS, iter_csv, read_trace
from repro.flows.stream import DEFAULT_INTERVAL_SECONDS
from repro.flows.table import FlowTable
from repro.incidents.provenance import (
    IncidentProvenance,
    explain_incident,
)
from repro.incidents.rank import RankedIncident, rank_incidents  # noqa: F401
from repro.incidents.store import IncidentStore
from repro.incidents.store import open_store as _open_store
from repro.obs.export import render_json, render_prometheus  # noqa: F401
from repro.obs.log import get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    time_stage,
)
from repro.obs.sink import MetricsSink
from repro.obs.trace import NULL_TRACER, Tracer, render_trace
from repro.registry import (
    Registry,
    feature_sets,
    miners,
    readers,
    routers,
    sinks,
)
from repro.streaming.extractor import StreamExtraction, StreamingExtractor

__all__ = [
    "extract",
    "stream",
    "session",
    "open_fleet",
    "open_store",
    "rank",
    "serve",
    "federate",
    "metrics",
    "resolve_config",
    # Curated re-exports (the stable names).
    "AnomalyExtractor",
    "StreamingExtractor",
    "ExtractionSession",
    "FleetManager",
    "FleetIncident",
    "FleetSettings",
    "ServiceSettings",
    "FederationSettings",
    "ExtractionConfig",
    "DetectorConfig",
    "MiningSettings",
    "ParallelSettings",
    "StreamingSettings",
    "IncidentSettings",
    "ExtractionResult",
    "TraceExtraction",
    "StreamExtraction",
    "ExtractionReport",
    "TriagedItemset",
    "RankedIncident",
    "IncidentStore",
    "Collector",
    "Federator",
    "IntervalDigest",
    "FederationResult",
    "FlowTable",
    "iter_csv",
    "read_trace",
    "Feature",
    "CustomFeature",
    "resolve_features",
    "ReportSink",
    "IntervalSink",
    "MetricsRegistry",
    "MetricsSink",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "time_stage",
    "tracer",
    "Tracer",
    "NULL_TRACER",
    "render_trace",
    "explain_incident",
    "IncidentProvenance",
    "get_logger",
    "Registry",
    "miners",
    "feature_sets",
    "readers",
    "sinks",
    "routers",
    "ReproError",
    "ConfigError",
    "ServiceError",
    "CheckpointError",
    "FederationError",
    "SketchError",
]


def resolve_config(
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None,
    **overrides: object,
) -> ExtractionConfig:
    """Normalize every accepted config spelling into an
    :class:`ExtractionConfig`.

    ``config`` may be a ready config, a nested mapping
    (:meth:`ExtractionConfig.from_dict`), a path to a TOML run config
    (:meth:`ExtractionConfig.from_toml`), or ``None`` for defaults.
    ``overrides`` are flat or grouped fields applied on top (the
    equivalent of explicit CLI flags over a ``--config`` file).
    """
    if config is None:
        resolved = ExtractionConfig()
    elif isinstance(config, ExtractionConfig):
        resolved = config
    elif isinstance(config, Mapping):
        resolved = ExtractionConfig.from_dict(config)
    elif isinstance(config, (str, os.PathLike)):
        resolved = ExtractionConfig.from_toml(config)
    else:
        raise ConfigError(
            f"config must be an ExtractionConfig, mapping, or TOML path, "
            f"got {type(config).__name__}"
        )
    if overrides:
        resolved = resolved.replace(**overrides)
    return resolved


def _load_flows(trace: FlowTable | str | os.PathLike[str]) -> FlowTable:
    if isinstance(trace, FlowTable):
        return trace
    return read_trace(trace)


def metrics(
    source: object | None = None,
    *,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> MetricsRegistry:
    """The metrics registry of a pipeline object, or a fresh one.

    With ``source`` (an :class:`AnomalyExtractor`,
    :class:`ExtractionSession`, :class:`StreamingExtractor`, or
    :class:`FleetManager`) this returns the registry that object
    records into - the no-op registry when observability is off.
    Without ``source`` it builds a fresh enabled
    :class:`MetricsRegistry` to pass into :func:`session`,
    :func:`extract`, or :func:`open_fleet` via ``metrics=``::

        reg = repro.metrics()
        repro.extract("trace.npz", metrics=reg)
        print(reg.render_prometheus())
    """
    if source is None:
        return MetricsRegistry(buckets=buckets)
    found = getattr(source, "metrics", None)
    if found is None or not hasattr(found, "snapshot"):
        raise ConfigError(
            f"{type(source).__name__} does not expose a metrics registry"
        )
    return found


def tracer(source: object | None = None) -> Tracer:
    """The span tracer of a pipeline object, or a fresh one.

    With ``source`` (an :class:`AnomalyExtractor`,
    :class:`ExtractionSession`, :class:`StreamingExtractor`, or
    :class:`FleetManager`) this returns the tracer that object records
    spans into - the no-op :data:`~repro.obs.trace.NULL_TRACER` when
    tracing is off.  Without ``source`` it builds a fresh enabled
    :class:`Tracer` to pass into :func:`session`, :func:`extract`,
    :func:`stream`, or :func:`open_fleet` via ``tracer=``::

        t = repro.tracer()
        repro.extract("trace.npz", tracer=t)
        print(repro.render_trace(t, "text"))
    """
    if source is None:
        return Tracer()
    found = getattr(source, "tracer", None)
    if found is None or not hasattr(found, "span"):
        raise ConfigError(
            f"{type(source).__name__} does not expose a span tracer"
        )
    return found


def session(
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    mode: str = "stream",
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    sink: ReportSink | None = None,
    keep_reports: bool = True,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    **overrides: object,
) -> ExtractionSession:
    """Open a push-based :class:`ExtractionSession` - the redesigned
    execution surface.

    The session owns a freshly built :class:`AnomalyExtractor`, so
    closing it (use it as a context manager) releases the worker pool
    and the incident store even when a mid-feed chunk raised::

        with repro.session(mode="stream", min_support=500) as s:
            for chunk in repro.iter_csv("trace.csv"):
                for extraction in s.feed(chunk):
                    print(extraction.render())
            summary = s.finish()

    Args:
        config: config object / nested dict / TOML path (see
            :func:`resolve_config`).
        mode: "batch" (results at ``finish()``, equivalent to
            :func:`extract`) or "stream" (incremental results from
            ``feed()``, equivalent to :func:`stream`).
        interval_seconds / origin / seed / sink: as in :func:`extract`.
        keep_reports: retain per-interval detector reports (set False
            for unbounded streams).
        metrics: optional :class:`MetricsRegistry` the run records
            into; defaults to one built from ``config.obs`` (the no-op
            registry unless ``[obs] enabled = true``).
        tracer: optional :class:`Tracer` the run records spans into;
            defaults to one built from ``config.obs`` (the no-op
            tracer unless ``[obs] trace_path`` is set).
        **overrides: flat or grouped config fields.
    """
    resolved = resolve_config(config, **overrides)
    extractor = AnomalyExtractor(
        resolved, seed=seed, metrics=metrics, tracer=tracer
    )
    try:
        return ExtractionSession(
            extractor,
            mode=mode,
            interval_seconds=interval_seconds,
            origin=origin,
            sink=sink,
            keep_reports=keep_reports,
            owns_extractor=True,
        )
    except BaseException:
        # Session construction failed (e.g. a bad mode or interval):
        # the extractor - and the store it may have opened - must not
        # leak.
        extractor.close()
        raise


def extract(
    trace: FlowTable | str | os.PathLike[str],
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    sink: ReportSink | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    **overrides: object,
) -> TraceExtraction:
    """Run the full batch pipeline (Fig. 3) over a trace.

    Args:
        trace: a :class:`FlowTable` or a path handled by the trace
            reader registry (".npz", ".csv", or any registered
            extension).
        config: config object / nested dict / TOML path (see
            :func:`resolve_config`).
        interval_seconds: measurement interval length ``L``.
        origin: timestamp of interval 0.
        seed: detector hash seed.
        sink: optional report sink; defaults to the store opened via
            ``config.incidents.store_path`` when one is set.
        metrics: optional :class:`MetricsRegistry` the run records
            into (see :func:`metrics`).
        tracer: optional :class:`Tracer` the run records spans into
            (see :func:`tracer`).
        **overrides: flat or grouped config fields, e.g.
            ``min_support=500``, ``miner="fpgrowth"``, ``jobs=4``.

    Returns:
        The :class:`TraceExtraction` with one
        :class:`ExtractionResult` per alarmed interval.
    """
    flows = _load_flows(trace)
    resolved = resolve_config(config, **overrides)
    with AnomalyExtractor(
        resolved, seed=seed, metrics=metrics, tracer=tracer
    ) as extractor:
        return extractor.run_trace(
            flows, interval_seconds, origin=origin, sink=sink
        )


def stream(
    source: (
        Iterable[FlowTable] | str | os.PathLike[str]
    ),
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    sink: ReportSink | None = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    keep_reports: bool = True,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    **overrides: object,
) -> StreamExtraction:
    """Run the pipeline chunk-by-chunk with bounded memory.

    ``source`` is a ``.csv`` path (streamed via
    :func:`~repro.flows.io.iter_csv`) or any iterable of
    :class:`FlowTable` chunks.  With default settings the result is
    batch-equivalent; see :class:`StreamingExtractor` for the
    incremental API and the retention knobs
    (``keep_reports`` here, ``streaming.keep_extractions`` in the
    config).

    Returns:
        The :class:`StreamExtraction` summary (counters always
        populated; ``extractions`` empty when
        ``config.streaming.keep_extractions`` is False).
    """
    if isinstance(source, (str, os.PathLike)):
        # Streaming parses incrementally, which only the row-oriented
        # CSV format supports; mirror the CLI's up-front rejection so a
        # binary trace surfaces as a ReproError, not a decode crash.
        if not os.fspath(source).endswith(".csv"):
            raise TraceFormatError(
                f"{source}: stream reads a .csv trace (pass a FlowTable "
                f"chunk iterable for other sources, or use extract() "
                f"for whole-file formats)"
            )
        chunks: Iterable[FlowTable] = iter_csv(source, chunk_rows=chunk_rows)
    else:
        chunks = source
    with session(
        config,
        mode="stream",
        interval_seconds=interval_seconds,
        origin=origin,
        seed=seed,
        sink=sink,
        keep_reports=keep_reports,
        metrics=metrics,
        tracer=tracer,
        **overrides,
    ) as opened:
        result = run_session(opened, chunks)
    assert isinstance(result, StreamExtraction)
    return result


def open_fleet(
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    pipelines: (
        int | Sequence[str] | Mapping[str, object] | None
    ) = None,
    route: str | None = None,
    store_dir: str | os.PathLike[str] | None = None,
    mode: str = "stream",
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    keep_reports: bool = False,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    **overrides: object,
) -> FleetManager:
    """Open a :class:`FleetManager`: N named pipelines, one router,
    one shared worker pool, per-pipeline incident stores.

    ``config`` is the base pipeline every link starts from - a ready
    :class:`ExtractionConfig`, a nested dict, or a TOML run config.  A
    dict or TOML config may carry a ``[fleet]`` table
    (:class:`FleetSettings`): its ``pipelines`` / ``route`` /
    ``store_dir`` become the defaults that the keyword arguments here
    override (the same flags-over-file layering as the CLI)::

        with repro.open_fleet("fleet.toml") as fleet:                  # file
            ...
        with repro.open_fleet(pipelines=4, route="dst_ip%4",           # code
                              min_support=300) as fleet:
            for chunk in repro.iter_csv("trace.csv"):
                fleet.feed(chunk)
            fleet.finish()
            top = fleet.incidents(top=10)

    Args:
        config: base config / nested dict / TOML path (see
            :func:`resolve_config`); dict/TOML may include ``[fleet]``.
        pipelines: an int (generates ``link0..linkN-1`` on the base
            config), a sequence of names (each on the base config), or
            a mapping of name -> per-pipeline section-override dict /
            :class:`ExtractionConfig` / ``None`` (= base).  ``None``
            uses the config file's ``[fleet.pipelines.*]`` tables.
        route / store_dir / mode / interval_seconds / origin / seed /
            keep_reports: see :class:`FleetManager`.
        **overrides: flat or grouped base-config fields
            (``min_support=500``, ``jobs=4``, ...).
    """
    from repro.core.config import apply_section_overrides

    fleet_data: Mapping | None = None
    if isinstance(config, (str, os.PathLike)):
        fleet_data, raw = split_fleet_data(config)
        try:
            base = ExtractionConfig.from_dict(raw)
        except ConfigError as exc:
            raise ConfigError(f"{config}: {exc}") from exc
        if overrides:
            base = base.replace(**overrides)
    elif isinstance(config, Mapping):
        raw = dict(config)
        fleet_data = raw.pop("fleet", None)
        base = resolve_config(raw, **overrides)
    else:
        base = resolve_config(config, **overrides)
    settings = FleetSettings.from_data(fleet_data, base)
    if route is None:
        route = settings.route
    if store_dir is None:
        store_dir = settings.store_dir
    configs: dict[str, ExtractionConfig]
    if pipelines is None:
        configs = settings.pipeline_configs()
        if not configs:
            raise ConfigError(
                "no pipelines configured: pass pipelines=... or add "
                "[fleet.pipelines.<name>] sections to the run config"
            )
    elif isinstance(pipelines, int):
        if pipelines < 1:
            raise ConfigError(f"pipelines must be >= 1: {pipelines}")
        configs = {f"link{i}": base for i in range(pipelines)}
    elif isinstance(pipelines, Mapping):
        configs = {}
        for name, spec in pipelines.items():
            if spec is None:
                configs[name] = base
            elif isinstance(spec, ExtractionConfig):
                configs[name] = spec
            elif isinstance(spec, Mapping):
                configs[name] = apply_section_overrides(base, spec)
            else:
                raise ConfigError(
                    f"pipeline {name!r} must map to an ExtractionConfig, "
                    f"a section-override mapping, or None, "
                    f"got {type(spec).__name__}"
                )
    else:
        names = [str(name) for name in pipelines]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            # A dict comprehension would silently collapse these and
            # run fewer pipelines than the caller declared.
            raise ConfigError(
                f"duplicate pipeline names: {', '.join(duplicates)}"
            )
        configs = {name: base for name in names}
    return FleetManager(
        configs,
        route=route,
        mode=mode,
        interval_seconds=interval_seconds,
        origin=origin,
        seed=seed,
        store_dir=store_dir,
        keep_reports=keep_reports,
        metrics=metrics,
        tracer=tracer,
    )


def open_store(
    path: str | os.PathLike[str],
    *,
    must_exist: bool = False,
    jaccard: float | None = None,
    quiet_gap: int | None = None,
) -> IncidentStore:
    """Open (or create) the persistent incident store at ``path``.

    A thin alias of :func:`repro.incidents.store.open_store`, exported
    here so the whole persist-correlate-rank workflow is reachable from
    one module.
    """
    return _open_store(
        path, must_exist=must_exist, jaccard=jaccard, quiet_gap=quiet_gap
    )


def rank(
    store: IncidentStore | str | os.PathLike[str],
    *,
    profile: str = "balanced",
    jaccard: float | None = None,
    quiet_gap: int | None = None,
    top: int | None = None,
) -> list[RankedIncident]:
    """Correlate and rank a store's reports into triaged incidents.

    Args:
        store: an open :class:`IncidentStore` or a path to one (opened
            read-style with ``must_exist=True`` and closed after the
            query).
        profile: ranking weight profile ("balanced", "volume",
            "campaign", or a
            :class:`~repro.incidents.rank.WeightProfile`).
        jaccard / quiet_gap: correlation overrides (``None`` = the
            store's persisted knobs).
        top: keep only the k best-ranked incidents.
    """
    if isinstance(store, (str, os.PathLike)):
        with _open_store(store, must_exist=True) as opened:
            ranked = opened.incidents(
                jaccard=jaccard, quiet_gap=quiet_gap, profile=profile
            )
    else:
        ranked = store.incidents(
            jaccard=jaccard, quiet_gap=quiet_gap, profile=profile
        )
    if top is not None:
        ranked = ranked[:top]
    return ranked


def serve(
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    pipelines: (
        int | Sequence[str] | Mapping[str, object] | None
    ) = None,
    route: str | None = None,
    store_dir: str | os.PathLike[str] | None = None,
    host: str | None = None,
    port: int | None = None,
    ingest_port: int | None = None,
    checkpoint_path: str | os.PathLike[str] | None = None,
    checkpoint_every: int | None = None,
    resume: bool = False,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    log: TextIO | None = None,
    **overrides: object,
) -> None:
    """Run a fleet as a long-lived extraction daemon (blocking).

    Opens a :class:`FleetManager` exactly like :func:`open_fleet`, then
    serves it over the stdlib HTTP/TCP service until SIGINT/SIGTERM:
    ``POST /ingest`` and the optional TCP line socket feed the fleet,
    ``GET /incidents`` / ``GET /incidents/<id>`` serve the merged
    ranking and per-incident provenance, ``GET /metrics`` the
    Prometheus export, ``GET /healthz`` per-pipeline watermark lag and
    backpressure.  A dict or TOML config may carry a ``[service]``
    table (:class:`ServiceSettings`); keyword arguments here override
    it, the same flags-over-file layering as ``repro-extract serve``::

        repro.serve("fleet.toml", resume=True)
        repro.serve(pipelines=2, route="dst_ip%2", port=0,
                    checkpoint_path="run.ckpt")

    With ``checkpoint_path`` set (it requires durable per-pipeline
    stores, so ``store_dir`` too) the daemon persists the whole fleet's
    resume state every ``checkpoint_every`` accepted ingest batches and
    once more at graceful shutdown; ``resume=True`` restores a killed
    run from that file and continues mid-stream without re-ingesting.

    Args:
        config: base config / nested dict / TOML path (see
            :func:`open_fleet`); dict/TOML may include ``[fleet]`` and
            ``[service]`` tables.
        pipelines / route / store_dir: as in :func:`open_fleet`, except
            that with nothing configured the daemon defaults to one
            ``link0`` pipeline instead of raising.
        host / port / ingest_port / checkpoint_path / checkpoint_every:
            :class:`ServiceSettings` overrides (``port=0`` binds an
            ephemeral port, announced on ``log``).
        resume: continue the run persisted at ``checkpoint_path``.
        interval_seconds / origin / seed / metrics / tracer: as in
            :func:`open_fleet`; ``metrics`` defaults to a *live*
            registry - ``/metrics`` is part of the daemon's contract.
        log: optional text stream for the "serving http://..."
            announcement (default ``sys.stderr``).
        **overrides: flat or grouped base-config fields.
    """
    from repro.service.supervisor import run_service

    service_data: Mapping | None = None
    federation_data: Mapping | None = None
    fleet_config: ExtractionConfig | Mapping | None
    if isinstance(config, (str, os.PathLike)):
        fleet_data, service_data, federation_data, raw = split_run_data(
            config
        )
        data = dict(raw)
        if fleet_data is not None:
            data["fleet"] = fleet_data
        fleet_config = data
    elif isinstance(config, Mapping):
        data = dict(config)
        service_data = data.pop("service", None)
        federation_data = data.pop("federation", None)
        fleet_config = data
    else:
        fleet_config = config
    try:
        settings = ServiceSettings.from_data(service_data)
        federation_settings = FederationSettings.from_data(federation_data)
    except ConfigError as exc:
        if isinstance(config, (str, os.PathLike)):
            raise ConfigError(f"{config}: {exc}") from exc
        raise
    kw: dict[str, object] = {}
    if host is not None:
        kw["host"] = host
    if port is not None:
        kw["port"] = port
    if ingest_port is not None:
        kw["ingest_port"] = ingest_port
    if checkpoint_path is not None:
        kw["checkpoint_path"] = os.fspath(checkpoint_path)
    if checkpoint_every is not None:
        kw["checkpoint_every"] = checkpoint_every
    if kw:
        import dataclasses

        settings = dataclasses.replace(settings, **kw)
    if pipelines is None:
        configured = isinstance(fleet_config, Mapping) and isinstance(
            fleet_config.get("fleet"), Mapping
        ) and fleet_config["fleet"].get("pipelines")
        if not configured:
            # A daemon without explicit pipelines watches one link.
            pipelines = 1
    if metrics is None:
        metrics = MetricsRegistry()
    federator = None
    federation_store: IncidentStore | None = None
    if federation_settings.configured:
        base = resolve_config(
            {k: v for k, v in fleet_config.items() if k != "fleet"}
            if isinstance(fleet_config, Mapping)
            else fleet_config,
            **overrides,
        )
        if federation_settings.store_path is not None:
            federation_store = _open_store(federation_settings.store_path)
        federator = Federator(
            sites=federation_settings.sites,
            config=base.detector,
            features=base.features,
            seed=seed,
            interval_seconds=interval_seconds,
            origin=origin,
            store=federation_store,
            metrics=metrics,
            tracer=tracer,
            **federation_kwargs(federation_settings),
        )
    try:
        with open_fleet(
            fleet_config,
            pipelines=pipelines,
            route=route,
            store_dir=store_dir,
            interval_seconds=interval_seconds,
            origin=origin,
            seed=seed,
            metrics=metrics,
            tracer=tracer,
            **overrides,
        ) as fleet:
            run_service(
                fleet, settings, resume=resume, log=log,
                federator=federator,
            )
    finally:
        if federation_store is not None:
            federation_store.close()


def federate(
    traces: (
        Mapping[str, FlowTable | str | os.PathLike[str]]
        | FlowTable
        | str
        | os.PathLike[str]
    ),
    config: ExtractionConfig | Mapping | str | os.PathLike[str] | None = None,
    *,
    sites: Sequence[str] | None = None,
    route: str | None = None,
    interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
    origin: float = 0.0,
    seed: int = 0,
    min_support: int | None = None,
    straggler_grace: int | None = None,
    store: IncidentStore | str | os.PathLike[str] | None = None,
    profile: str = "balanced",
    top: int | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    **overrides: object,
) -> FederationResult:
    """Federate multiple vantage points' traces into one global view.

    Each site's trace is summarized interval-by-interval into mergeable
    sketch digests (histogram clones + count-min, O(sketch) per site,
    not O(flows)); one federator merges every interval across sites,
    runs the KL detectors over the merged view, and turns alarmed
    intervals into triaged, ranked incidents - the offline shape of the
    ``repro-extract federate`` workflow::

        result = repro.federate({"pop-east": "east.npz",
                                 "pop-west": "west.npz"})
        result = repro.federate("combined.csv", sites=["a", "b"],
                                route="dst_ip%2", min_support=500)
        for entry in result.incidents:
            print(entry.render())

    Args:
        traces: a mapping of site name -> trace (each a
            :class:`FlowTable` or a readable trace path), or one
            combined trace to split across ``sites`` by ``route`` (as
            if each site had captured its own share).
        config: config object / nested dict / TOML path (see
            :func:`resolve_config`); dict/TOML may carry a
            ``[federation]`` table (:class:`FederationSettings`) whose
            ``sites`` / ``route`` / sketch-geometry keys become the
            defaults the keyword arguments here override.
        sites: site names for the single-trace form (overrides
            ``[federation] sites``); ignored when ``traces`` is a
            mapping.
        route: routing spec splitting a single trace across sites
            (default ``[federation] route``, else ``dst_ip``).
        interval_seconds / origin / seed: the shared interval grid and
            hash seed - identical at every site by construction here;
            live collectors must agree on them out of band.
        min_support: support floor for merged count-min item-sets
            (overrides ``[federation] min_support``).
        straggler_grace: release an interval once this many later
            intervals have been seen, merging whatever arrived
            (overrides ``[federation] straggler_grace``).
        store: optional incident store (open
            :class:`IncidentStore` or path) the federation's reports
            are appended to.
        profile / top: incident ranking knobs (see :func:`rank`).
        metrics / tracer: observability hooks (see :func:`metrics` /
            :func:`tracer`).
        **overrides: flat or grouped base-config fields
            (``features="paper5"``, ``detector={"clones": 8}``, ...);
            the detector group configures the clone geometry every
            site's digests must share.
    """
    federation_data: Mapping | None = None
    if isinstance(config, (str, os.PathLike)):
        _fleet_data, _service_data, federation_data, raw = split_run_data(
            config
        )
        try:
            base = ExtractionConfig.from_dict(raw)
        except ConfigError as exc:
            raise ConfigError(f"{config}: {exc}") from exc
        if overrides:
            base = base.replace(**overrides)
    elif isinstance(config, Mapping):
        data = dict(config)
        federation_data = data.pop("federation", None)
        data.pop("fleet", None)
        data.pop("service", None)
        base = resolve_config(data, **overrides)
    else:
        base = resolve_config(config, **overrides)
    try:
        settings = FederationSettings.from_data(federation_data)
    except ConfigError as exc:
        if isinstance(config, (str, os.PathLike)):
            raise ConfigError(f"{config}: {exc}") from exc
        raise
    kwargs = federation_kwargs(settings)
    if min_support is not None:
        kwargs["min_support"] = min_support
    if straggler_grace is not None:
        kwargs["straggler_grace"] = straggler_grace
    if isinstance(traces, Mapping):
        site_traces = {
            str(site): _load_flows(trace)
            for site, trace in traces.items()
        }
    else:
        site_names = (
            tuple(str(s) for s in sites)
            if sites is not None
            else settings.sites
        )
        if not site_names:
            raise FederationError(
                "federating a single trace needs site names: pass "
                "sites=[...] or configure [federation] sites"
            )
        spec = route if route is not None else settings.route
        if spec is None:
            spec = "dst_ip"
        site_traces = split_trace(_load_flows(traces), site_names, spec)
    opened: IncidentStore | None = None
    if isinstance(store, (str, os.PathLike)):
        opened = _open_store(store)
    elif store is None and settings.store_path is not None:
        opened = _open_store(settings.store_path)
    try:
        return run_federation(
            site_traces,
            config=base.detector,
            features=base.features,
            seed=seed,
            interval_seconds=interval_seconds,
            origin=origin,
            jaccard=(
                base.incident_jaccard
                if base.incident_jaccard is not None
                else 0.5
            ),
            quiet_gap=(
                base.incident_quiet_gap
                if base.incident_quiet_gap is not None
                else 2
            ),
            store=opened if opened is not None else (
                store if isinstance(store, IncidentStore) else None
            ),
            profile=profile,
            top=top,
            metrics=metrics,
            tracer=tracer,
            **kwargs,
        )
    finally:
        if opened is not None:
            opened.close()
