"""Fixture: instruments built strictly from the catalog."""


def instrument(registry):
    flows = registry.counter(
        "repro_flows_processed_total",
        "Flows observed by the detector bank (late drops excluded).",
        ("pipeline",),
    )
    late = registry.counter(
        "repro_assembler_late_dropped_total",
        "Flows dropped by the assembler, split by reason.",
        ("pipeline", "reason"),
    )
    jobs = registry.gauge(
        "repro_parallel_jobs",
        "Configured worker count of the parallel executor.",
        ("backend",),
    )
    return flows, late, jobs
