"""Unit tests for clone sets."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sketch.cloning import CloneSet


class TestCloneSet:
    def test_clone_count(self):
        clones = CloneSet(clones=4, bins=16, seed=1)
        assert len(clones) == 4
        assert clones.bins == 16

    def test_needs_at_least_one_clone(self):
        with pytest.raises(ConfigError):
            CloneSet(clones=0, bins=16)

    def test_clones_use_distinct_hashes(self):
        clones = CloneSet(clones=3, bins=1024, seed=2)
        params = {(c.hash_fn.a, c.hash_fn.b) for c in clones}
        assert len(params) == 3

    def test_update_feeds_all_clones(self):
        clones = CloneSet(clones=3, bins=16, seed=0)
        clones.update(np.array([1, 2, 3], dtype=np.uint64))
        assert all(c.total == 3.0 for c in clones)

    def test_reset_clears_all_clones(self):
        clones = CloneSet(clones=2, bins=16, seed=0)
        clones.update(np.array([1], dtype=np.uint64))
        clones.reset()
        assert all(c.total == 0.0 for c in clones)

    def test_snapshots_align_with_clones(self):
        clones = CloneSet(clones=2, bins=16, seed=0)
        clones.update(np.array([5, 6], dtype=np.uint64))
        snaps = clones.snapshots()
        assert len(snaps) == 2
        for clone, snap in zip(clones, snaps):
            assert np.array_equal(snap.counts, clone.counts)

    def test_same_seed_reproducible(self):
        a = CloneSet(clones=2, bins=64, seed=5)
        b = CloneSet(clones=2, bins=64, seed=5)
        values = np.arange(100, dtype=np.uint64)
        a.update(values)
        b.update(values)
        for ca, cb in zip(a, b):
            assert np.array_equal(ca.counts, cb.counts)

    def test_indexing(self):
        clones = CloneSet(clones=3, bins=8, seed=0)
        assert clones[0] is list(iter(clones))[0]
