"""Frequent item-set mining over flow transactions."""

from repro.mining.apriori import apriori
from repro.mining.closed import closed_itemsets, filter_closed, is_closed_in
from repro.mining.eclat import eclat
from repro.mining.fpgrowth import fpgrowth
from repro.mining.items import (
    FEATURE_SHIFT,
    VALUE_MASK,
    FrequentItemset,
    decode_item,
    encode_item,
    format_item,
    item_feature,
    itemsets_sorted,
)
from repro.mining.maximal import filter_maximal, is_maximal_in
from repro.mining.multilevel import (
    LevelledItemset,
    aggregate_prefixes,
    mine_multilevel,
    prefix_mask,
)
from repro.mining.partition import (
    count_candidates,
    local_min_support,
    merge_candidates,
    merge_results,
    partition_transactions,
)
from repro.mining.result import LevelStats, MiningResult
from repro.mining.rules import AssociationRule, derive_rules
from repro.mining.streaming import SlidingWindowMiner
from repro.mining.topk import mine_top_k, support_for_top_k
from repro.mining.transactions import TRANSACTION_WIDTH, TransactionSet


def _son_miner(transactions, min_support, maximal_only=True, **kwargs):
    """Partitioned SON miner (serial by default; see :mod:`repro.parallel`).

    Imported lazily - :mod:`repro.parallel.son` imports the serial
    miners from this package's submodules.
    """
    from repro.parallel.son import son

    return son(
        transactions, min_support, maximal_only=maximal_only, **kwargs
    )


#: Miners by name: the :data:`repro.registry.miners` registry.  The
#: ``MINERS`` alias predates the registry and keeps its dict-style API
#: (lookup, membership, iteration) working unchanged; new code and
#: third-party plugins should use :mod:`repro.registry` directly.
from repro.registry import miners as MINERS  # noqa: E402

MINERS.register("apriori", apriori, replace=True)
MINERS.register("fpgrowth", fpgrowth, replace=True)
MINERS.register("eclat", eclat, replace=True)
MINERS.register("son", _son_miner, replace=True)

__all__ = [
    "apriori",
    "fpgrowth",
    "eclat",
    "MINERS",
    "filter_closed",
    "closed_itemsets",
    "is_closed_in",
    "mine_top_k",
    "support_for_top_k",
    "SlidingWindowMiner",
    "aggregate_prefixes",
    "mine_multilevel",
    "prefix_mask",
    "LevelledItemset",
    "FEATURE_SHIFT",
    "VALUE_MASK",
    "FrequentItemset",
    "encode_item",
    "decode_item",
    "format_item",
    "item_feature",
    "itemsets_sorted",
    "filter_maximal",
    "is_maximal_in",
    "partition_transactions",
    "local_min_support",
    "merge_candidates",
    "merge_results",
    "count_candidates",
    "LevelStats",
    "MiningResult",
    "AssociationRule",
    "derive_rules",
    "TRANSACTION_WIDTH",
    "TransactionSet",
]
