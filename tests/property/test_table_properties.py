"""Property-based tests for FlowTable and interval windowing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.io import read_csv, read_npz, write_csv, write_npz
from repro.flows.stream import split_intervals
from repro.flows.table import FlowTable


@st.composite
def flow_tables(draw):
    n = draw(st.integers(min_value=0, max_value=50))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return FlowTable.from_arrays(
        src_ip=rng.integers(0, 2**32, n),
        dst_ip=rng.integers(0, 2**32, n),
        src_port=rng.integers(0, 2**16, n),
        dst_port=rng.integers(0, 2**16, n),
        protocol=rng.integers(0, 256, n),
        packets=rng.integers(1, 10**6, n),
        bytes_=rng.integers(40, 10**9, n),
        start=rng.uniform(0.0, 5000.0, n),
        label=rng.integers(-1, 10, n),
    )


@settings(max_examples=50, deadline=None)
@given(table=flow_tables())
def test_csv_round_trip(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    write_csv(table, path)
    assert read_csv(path) == table


@settings(max_examples=50, deadline=None)
@given(table=flow_tables())
def test_npz_round_trip(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("npz") / "t.npz"
    write_npz(table, path)
    assert read_npz(path) == table


@settings(max_examples=100, deadline=None)
@given(table=flow_tables())
def test_concat_split_identity(table):
    if len(table) == 0:
        return
    half = len(table) // 2
    first = table.select(np.arange(half))
    second = table.select(np.arange(half, len(table)))
    assert FlowTable.concat([first, second]) == table


@settings(max_examples=100, deadline=None)
@given(table=flow_tables(), interval=st.floats(min_value=10.0, max_value=2000.0))
def test_windowing_partitions_flows(table, interval):
    if len(table) == 0:
        return
    views = split_intervals(table, interval, origin=0.0)
    assert sum(len(v) for v in views) == len(table)
    for view in views:
        if len(view):
            assert (view.flows.start >= view.start).all()
            assert (view.flows.start < view.end).all()


@settings(max_examples=100, deadline=None)
@given(table=flow_tables())
def test_sort_by_start_is_permutation(table):
    ordered = table.sort_by_start()
    assert len(ordered) == len(table)
    assert (np.diff(ordered.start) >= 0).all()
    assert sorted(table.packets.tolist()) == sorted(ordered.packets.tolist())


@settings(max_examples=100, deadline=None)
@given(table=flow_tables())
def test_anomalous_mask_consistent_with_events(table):
    mask_count = int(table.anomalous_mask.sum())
    by_event = sum(
        len(table.flows_of_event(int(e))) for e in table.event_labels()
    )
    assert mask_count == by_event
