"""Multi-stage worm injector (Sasser-like).

Section II-A motivates *union* prefiltering with the Sasser worm, which
propagates in three flow-disjoint stages:

1. SYN scanning of target hosts on the vulnerable service port;
2. connection attempts to a backdoor on port 9996 of exploited hosts;
3. download of the ~16 kB worm executable (FTP-ish transfer).

Because the stages share no single flow, intersecting the per-stage
meta-data yields the empty set while the union captures all three - the
property exercised by ``benchmarks/bench_union_vs_intersection.py``.
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyInjector, uniform_times
from repro.errors import ConfigError
from repro.flows.record import PROTO_TCP
from repro.flows.table import FlowTable

SASSER_SCAN_PORT = 445
SASSER_BACKDOOR_PORT = 9996
SASSER_FTP_PORT = 5554
SASSER_PAYLOAD_BYTES = 16_384


class SasserLikeWorm(AnomalyInjector):
    """Three-stage worm outbreak with flow-disjoint stage signatures."""

    kind = "worm"

    def __init__(
        self,
        infected_ips: list[int] | tuple[int, ...],
        scan_flows: int = 30_000,
        backdoor_flows: int = 6_000,
        download_flows: int = 3_000,
        target_space_start: int = 0x823B0000,
        target_space_size: int = 65_536,
    ):
        if not infected_ips:
            raise ConfigError("worm needs at least one infected host")
        for count, name in (
            (scan_flows, "scan_flows"),
            (backdoor_flows, "backdoor_flows"),
            (download_flows, "download_flows"),
        ):
            if count < 1:
                raise ConfigError(f"{name} must be >= 1: {count}")
        self.infected_ips = tuple(int(ip) for ip in infected_ips)
        self.scan_flows = scan_flows
        self.backdoor_flows = backdoor_flows
        self.download_flows = download_flows
        self.target_space_start = target_space_start
        self.target_space_size = target_space_size

    # ------------------------------------------------------------------
    def _stage_scan(
        self, rng: np.random.Generator, start: float, duration: float, label: int
    ) -> FlowTable:
        n = self.scan_flows
        infected = np.asarray(self.infected_ips, dtype=np.uint64)
        src = infected[rng.integers(0, len(infected), size=n)]
        dst = np.uint64(self.target_space_start) + rng.integers(
            0, self.target_space_size, size=n, dtype=np.uint64
        )
        return FlowTable.from_arrays(
            src_ip=src,
            dst_ip=dst,
            src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
            dst_port=np.full(n, SASSER_SCAN_PORT, dtype=np.uint64),
            protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
            packets=np.ones(n, dtype=np.uint64),
            bytes_=np.full(n, 48, dtype=np.uint64),
            start=uniform_times(rng, n, start, duration),
            label=np.full(n, label, dtype=np.int64),
        )

    def _stage_backdoor(
        self, rng: np.random.Generator, start: float, duration: float, label: int
    ) -> FlowTable:
        n = self.backdoor_flows
        infected = np.asarray(self.infected_ips, dtype=np.uint64)
        src = infected[rng.integers(0, len(infected), size=n)]
        dst = np.uint64(self.target_space_start) + rng.integers(
            0, self.target_space_size, size=n, dtype=np.uint64
        )
        packets = rng.integers(3, 8, size=n).astype(np.uint64)
        return FlowTable.from_arrays(
            src_ip=src,
            dst_ip=dst,
            src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
            dst_port=np.full(n, SASSER_BACKDOOR_PORT, dtype=np.uint64),
            protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
            packets=packets,
            bytes_=packets * np.uint64(60),
            start=uniform_times(rng, n, start, duration),
            label=np.full(n, label, dtype=np.int64),
        )

    def _stage_download(
        self, rng: np.random.Generator, start: float, duration: float, label: int
    ) -> FlowTable:
        n = self.download_flows
        # Victims fetch the payload *from* the infected hosts: the worm
        # binary is a fixed-size transfer, so #bytes is constant - the
        # "specific flow size" meta-data of the paper's example.
        infected = np.asarray(self.infected_ips, dtype=np.uint64)
        dst_infected = infected[rng.integers(0, len(infected), size=n)]
        victims = np.uint64(self.target_space_start) + rng.integers(
            0, self.target_space_size, size=n, dtype=np.uint64
        )
        packets = np.full(n, 12, dtype=np.uint64)
        return FlowTable.from_arrays(
            src_ip=victims,
            dst_ip=dst_infected,
            src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
            dst_port=np.full(n, SASSER_FTP_PORT, dtype=np.uint64),
            protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
            packets=packets,
            bytes_=np.full(n, SASSER_PAYLOAD_BYTES, dtype=np.uint64),
            start=uniform_times(rng, n, start, duration),
            label=np.full(n, label, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    def generate(
        self,
        rng: np.random.Generator,
        start: float,
        duration: float,
        label: int,
    ) -> FlowTable:
        self._check_generate_args(start, duration, label)
        # Stages overlap but are offset: scanning first, then backdoor
        # probing, then payload download.
        third = duration / 3.0
        return FlowTable.concat(
            [
                self._stage_scan(rng, start, duration, label),
                self._stage_backdoor(rng, start + third, duration - third, label),
                self._stage_download(
                    rng, start + 2 * third, duration - 2 * third, label
                ),
            ]
        ).sort_by_start()

    def describe(self) -> str:
        return (
            f"Sasser-like worm: {len(self.infected_ips)} infected hosts; "
            f"scan {SASSER_SCAN_PORT} ({self.scan_flows}), backdoor "
            f"{SASSER_BACKDOOR_PORT} ({self.backdoor_flows}), download "
            f"{SASSER_FTP_PORT} ({self.download_flows})"
        )

    def signature(self) -> dict[str, int]:
        return {
            "dst_port": SASSER_SCAN_PORT,
            "bytes": SASSER_PAYLOAD_BYTES,
        }

    def stage_signatures(self) -> list[dict[str, int]]:
        """Per-stage feature hints (flow-disjoint by design)."""
        return [
            {"dst_port": SASSER_SCAN_PORT},
            {"dst_port": SASSER_BACKDOOR_PORT},
            {"dst_port": SASSER_FTP_PORT, "bytes": SASSER_PAYLOAD_BYTES},
        ]
