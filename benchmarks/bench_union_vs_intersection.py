"""Section II-A ablation: union vs intersection prefiltering.

Paper: meta-data of multi-stage anomalies (the Sasser worm: SYN scan on
445, backdoor on 9996, 16 kB payload download) is flow-disjoint, so the
intersection of flows matching all meta-data is empty and misses the
anomaly entirely, while the union retains every stage - the reason the
pipeline takes the union (see also [3, Section 3.4]).
"""

import numpy as np

from repro.anomalies.worm import (
    SASSER_BACKDOOR_PORT,
    SASSER_FTP_PORT,
    SASSER_PAYLOAD_BYTES,
    SASSER_SCAN_PORT,
)
from repro.core.prefilter import prefilter
from repro.detection.features import Feature
from repro.detection.metadata import Metadata
from repro.flows.stream import interval_of
from repro.mining.apriori import apriori
from repro.mining.transactions import TransactionSet
from repro.traffic.scenarios import worm_outbreak_trace


def _workload():
    trace = worm_outbreak_trace(flows_per_interval=2000, seed=23)
    interval = interval_of(trace.flows, 8, 900.0, origin=0.0)
    metadata = Metadata()
    metadata.add(
        Feature.DST_PORT,
        np.array(
            [SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT],
            dtype=np.uint64,
        ),
    )
    metadata.add(
        Feature.BYTES, np.array([SASSER_PAYLOAD_BYTES], dtype=np.uint64)
    )
    return interval.flows, metadata


def test_union_vs_intersection_prefilter(benchmark, report):
    flows, metadata = _workload()

    union = benchmark(prefilter, flows, metadata, "union")
    inter = prefilter(flows, metadata, "intersection")

    total_event = int(flows.anomalous_mask.sum())
    union_event = int(union.flows.anomalous_mask.sum())
    inter_event = int(inter.flows.anomalous_mask.sum())

    union_ports = set(np.unique(union.flows.dst_port).tolist())
    inter_ports = set(np.unique(inter.flows.dst_port).tolist())

    report(
        "",
        "Union vs intersection prefiltering (Sasser-like 3-stage worm)",
        f"  event flows in interval: {total_event}",
        f"  union:        kept {union.selected_flows} flows, "
        f"{union_event} event flows ({union_event / total_event:.0%} recall)",
        f"  intersection: kept {inter.selected_flows} flows, "
        f"{inter_event} event flows ({inter_event / max(1, total_event):.0%} recall)",
        f"  stages visible - union: "
        f"{sorted(union_ports & {445, 9996, 5554})}, intersection: "
        f"{sorted(inter_ports & {445, 9996, 5554})}",
    )

    # The paper's claim: union retains all stages, intersection misses
    # the scan and backdoor stages entirely.
    assert {SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT} <= union_ports
    assert SASSER_SCAN_PORT not in inter_ports
    assert SASSER_BACKDOOR_PORT not in inter_ports
    assert union_event / total_event > 0.99
    assert inter_event < 0.4 * total_event


def test_union_mining_summarizes_all_stages(benchmark, report):
    """End-to-end: mining the union-prefiltered flows produces item-sets
    for every worm stage; the intersection variant cannot."""
    flows, metadata = _workload()
    union = prefilter(flows, metadata, "union")

    result = benchmark.pedantic(
        apriori,
        args=(TransactionSet.from_flows(union.flows), 300),
        rounds=3,
        iterations=1,
    )
    ports_in_report = {
        s.as_dict().get(Feature.DST_PORT) for s in result.itemsets
    }
    report(
        f"  mining the union (s=300): {len(result.itemsets)} item-sets, "
        f"stage ports in report: "
        f"{sorted(p for p in ports_in_report if p in (445, 9996, 5554))}"
    )
    assert {SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT} <= ports_in_report
