"""The initial ruleset: the invariants this codebase keeps breaking."""

from __future__ import annotations

from repro.devtools.rules.api_surface import ApiSurfaceRule
from repro.devtools.rules.envelope import ErrorEnvelopeRule
from repro.devtools.rules.layering import LayeringRule
from repro.devtools.rules.locking import LockDisciplineRule
from repro.devtools.rules.metrics_catalog import MetricCatalogRule
from repro.devtools.rules.registry_discipline import RegistryDisciplineRule
from repro.devtools.rules.span_catalog import SpanCatalogRule

#: Every built-in rule class, in code order.
DEFAULT_RULES = (
    ErrorEnvelopeRule,
    MetricCatalogRule,
    RegistryDisciplineRule,
    LayeringRule,
    LockDisciplineRule,
    ApiSurfaceRule,
    SpanCatalogRule,
)


def rules_by_code() -> dict[str, type]:
    """``{"RPR001": ErrorEnvelopeRule, ...}`` for select/ignore."""
    return {rule.code: rule for rule in DEFAULT_RULES}


__all__ = [
    "DEFAULT_RULES",
    "ApiSurfaceRule",
    "ErrorEnvelopeRule",
    "LayeringRule",
    "LockDisciplineRule",
    "MetricCatalogRule",
    "RegistryDisciplineRule",
    "SpanCatalogRule",
    "rules_by_code",
]
