"""Half of a module-scope import cycle."""

import repro.mining.b
