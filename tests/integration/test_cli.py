"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--intervals", "3", "--out", "x.npz"]
        )
        assert args.intervals == 3
        assert args.out == "x.npz"


class TestCommands:
    def test_generate_and_detect_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        code = main(
            [
                "generate",
                "--intervals", "4",
                "--flows-per-interval", "300",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "wrote" in captured.out

        code = main(
            [
                "detect", str(out),
                "--bins", "64",
                "--training", "3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "intervals" in captured.out

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(
            ["generate", "--intervals", "2", "--flows-per-interval", "100",
             "--out", str(out)]
        ) == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("src_ip,")

    def test_table2_command(self, capsys):
        code = main(["table2", "--scale", "0.01"])
        assert code == 0
        captured = capsys.readouterr()
        assert "min support" in captured.out
        assert "dstPort=7000" in captured.out

    def test_extract_command(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        main(
            ["generate", "--intervals", "4", "--flows-per-interval", "200",
             "--out", str(out)]
        )
        code = main(
            [
                "extract", str(out),
                "--bins", "64",
                "--training", "3",
                "--min-support", "50",
            ]
        )
        assert code == 0

    def test_topk_command(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        main(
            ["generate", "--intervals", "2", "--flows-per-interval", "300",
             "--out", str(out)]
        )
        capsys.readouterr()
        code = main(["topk", str(out), "-k", "5"])
        assert code == 0
        captured = capsys.readouterr()
        assert "top-5" in captured.out
        assert "support" in captured.out

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "repro-extract" in proc.stdout

    def test_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,trace\n")
        code = main(["detect", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_extension_rejected(self, tmp_path, capsys):
        bad = tmp_path / "trace.pcap"
        bad.write_text("whatever")
        code = main(["detect", str(bad)])
        assert code == 2
        assert "unknown trace format" in capsys.readouterr().err


class TestStreamCommand:
    @pytest.fixture(scope="class")
    def csv_trace(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_csv

        path = tmp_path_factory.mktemp("stream-cli") / "trace.csv"
        write_csv(ddos_trace.flows, str(path))
        return str(path)

    _STREAM_ARGS = [
        "--bins", "256", "--training", "16", "--min-support", "300",
    ]

    def test_stream_matches_extract(self, csv_trace, capsys):
        assert main(
            ["--seed", "1", "extract", csv_trace, *self._STREAM_ARGS]
        ) == 0
        batch = capsys.readouterr().out
        assert "interval 24" in batch
        assert main(
            ["--seed", "1", "stream", csv_trace, *self._STREAM_ARGS,
             "--chunk-rows", "700"]
        ) == 0
        streamed = capsys.readouterr().out
        # Identical reports, plus the trailing stream summary line.
        body, summary, _ = streamed.rsplit("\n", 2)
        assert body + "\n" == batch
        assert "intervals" in summary

    def test_stream_from_stdin(self, csv_trace, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(open(csv_trace).read())
        )
        assert main(
            ["--seed", "1", "stream", "-", *self._STREAM_ARGS]
        ) == 0
        assert "interval 24" in capsys.readouterr().out

    def test_stream_window_flag(self, csv_trace, capsys):
        assert main(
            ["--seed", "1", "stream", csv_trace, *self._STREAM_ARGS,
             "--window", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "windows mined" in out

    def test_stream_origin_flag_for_absolute_timestamps(
        self, csv_trace, tmp_path, capsys
    ):
        """Epoch-style timestamps need --origin; without it the gap
        guard fails fast instead of grinding millions of empty
        intervals."""
        from repro.flows import read_csv, write_csv
        from repro.flows.table import ALL_COLUMNS, FlowTable

        flows = read_csv(csv_trace)
        epoch = 1.75e9
        shifted = FlowTable(
            {
                name: (
                    flows.column(name) + epoch
                    if name == "start"
                    else flows.column(name)
                )
                for name in ALL_COLUMNS
            }
        )
        path = tmp_path / "epoch.csv"
        write_csv(shifted, str(path))

        assert main(["stream", str(path), *self._STREAM_ARGS]) == 2
        assert "max_gap_intervals" in capsys.readouterr().err

        assert main(
            ["--seed", "1", "stream", str(path), *self._STREAM_ARGS,
             "--origin", str(epoch)]
        ) == 0
        assert "interval 24" in capsys.readouterr().out

    def test_stream_rejects_npz(self, tmp_path, capsys):
        from repro.flows import FlowTable, write_npz

        path = tmp_path / "trace.npz"
        write_npz(FlowTable.empty(), str(path))
        assert main(["stream", str(path)]) == 2
        assert "stream reads" in capsys.readouterr().err

    def test_stream_malformed_input_nonzero_exit(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("not,a,trace\n1,2,3\n")
        assert main(["stream", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stream_malformed_mid_file_nonzero_exit(
        self, csv_trace, tmp_path, capsys
    ):
        bad = tmp_path / "truncated.csv"
        with open(csv_trace) as src:
            lines = src.readlines()[:50]
        lines.append("1,2,3\n")  # ragged row after valid chunks
        bad.write_text("".join(lines))
        assert main(
            ["stream", str(bad), *self._STREAM_ARGS, "--chunk-rows", "10"]
        ) == 2
        assert "fields" in capsys.readouterr().err


class TestJsonFormat:
    @pytest.fixture(scope="class")
    def trace_npz(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_npz

        path = tmp_path_factory.mktemp("json-cli") / "trace.npz"
        write_npz(ddos_trace.flows, str(path))
        return str(path)

    _ARGS = ["--bins", "256", "--training", "16", "--min-support", "300"]

    def test_detect_json(self, trace_npz, capsys):
        assert main(
            ["--seed", "1", "detect", trace_npz, "--bins", "256",
             "--training", "16", "--format", "json"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            doc = json.loads(line)
            assert {"interval", "start", "end", "flow_count",
                    "alarmed_features"} <= set(doc)

    def test_extract_json_one_document_per_interval(
        self, trace_npz, capsys
    ):
        assert main(
            ["--seed", "1", "extract", trace_npz, *self._ARGS,
             "--format", "json"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert any(doc["interval"] == 24 for doc in docs)
        for doc in docs:
            assert "itemsets" in doc
            assert doc["min_support"] == 300

    def test_extract_json_matches_report_serialization(
        self, trace_npz, capsys
    ):
        from repro.core.report import ExtractionReport

        assert main(
            ["--seed", "1", "extract", trace_npz, *self._ARGS,
             "--format", "json"]
        ) == 0
        for line in capsys.readouterr().out.strip().splitlines():
            report = ExtractionReport.from_json(line)
            assert report.to_json() == line

    def test_stream_json_summary_on_stderr(
        self, tmp_path, ddos_trace, capsys
    ):
        from repro.flows import write_csv

        path = tmp_path / "trace.csv"
        write_csv(ddos_trace.flows, str(path))
        assert main(
            ["--seed", "1", "stream", str(path), *self._ARGS,
             "--format", "json"]
        ) == 0
        captured = capsys.readouterr()
        for line in captured.out.strip().splitlines():
            json.loads(line)
        assert "intervals" in captured.err


class TestIncidentCommands:
    @pytest.fixture(scope="class")
    def stored(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_npz

        tmp = tmp_path_factory.mktemp("incidents-cli")
        trace = tmp / "trace.npz"
        write_npz(ddos_trace.flows, str(trace))
        db = tmp / "incidents.db"
        assert main(
            ["--seed", "1", "extract", str(trace),
             "--bins", "256", "--training", "16",
             "--min-support", "300", "--store", str(db)]
        ) == 0
        return str(db)

    def test_store_flag_persists_reports(self, stored):
        from repro.incidents import IncidentStore

        with IncidentStore(stored) as store:
            assert len(store) > 0
            assert 24 in store.intervals()

    def test_incidents_table_listing(self, stored, capsys):
        assert main(["incidents", stored]) == 0
        out = capsys.readouterr().out
        assert "incidents" in out
        assert "score=" in out

    def test_incidents_json_listing(self, stored, capsys):
        assert main(["incidents", stored, "--format", "json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert docs
        assert {"incident_id", "score", "state"} <= set(docs[0])

    def test_incidents_top_k(self, stored, capsys):
        assert main(
            ["incidents", stored, "--top", "1", "--format", "json"]
        ) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1

    def test_incidents_top_k_header_keeps_total(self, stored, capsys):
        total = len(json.loads(
            (main(["incidents", stored, "--format", "json"]),
             capsys.readouterr().out)[1]
        ))
        assert main(["incidents", stored, "--top", "1"]) == 0
        out = capsys.readouterr().out
        if total > 1:
            # The header must report the store's total, not the slice.
            assert f"top 1 of {total} incidents" in out
        else:
            assert f"{total} incidents" in out

    def test_incidents_show_detail(self, stored, capsys):
        assert main(
            ["incidents", stored, "--format", "json"]
        ) == 0
        docs = json.loads(capsys.readouterr().out)
        top = docs[0]["incident_id"]
        assert main(
            ["incidents", stored, "--show", str(top), "--format", "json"]
        ) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["incident_id"] == top
        assert detail["history"]

    def test_incidents_show_table(self, stored, capsys):
        assert main(["incidents", stored, "--show", "1"]) == 0
        out = capsys.readouterr().out
        assert "history" in out

    def test_show_history_bounded_to_own_span(self, tmp_path, capsys):
        """A reappeared incident's drill-down must not print the
        intervals of the earlier, closed incident with the same key."""
        from repro.incidents import IncidentStore
        from tests.incidents.test_store import PORT80, VICTIM, make_report

        db = str(tmp_path / "split.db")
        with IncidentStore(db) as store:
            store.extend([
                make_report(
                    i, [((VICTIM, PORT80), 100 + i, "suspicious")]
                )
                for i in (1, 2, 10, 11)  # gap 8 > quiet_gap 2: two incidents
            ])
        assert main(
            ["incidents", db, "--show", "2", "--format", "json"]
        ) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["first_seen"] == 10
        assert [h["interval"] for h in detail["history"]] == [10, 11]

    def test_incidents_show_unknown_id(self, stored, capsys):
        assert main(["incidents", stored, "--show", "9999"]) == 2
        assert "no incident" in capsys.readouterr().err

    def test_incidents_missing_db(self, tmp_path, capsys):
        assert main(
            ["incidents", str(tmp_path / "nope.db")]
        ) == 2
        assert "no incident store" in capsys.readouterr().err

    def test_incidents_unknown_profile(self, stored, capsys):
        assert main(
            ["incidents", stored, "--profile", "nope"]
        ) == 2
        assert "unknown weight profile" in capsys.readouterr().err

    def test_incidents_show_includes_vote_breakdown(self, stored, capsys):
        assert main(["incidents", stored, "--show", "1"]) == 0
        out = capsys.readouterr().out
        assert "detector votes by feature:" in out
        assert "contributing intervals" in out

    def test_incidents_explain_narrative(self, stored, capsys):
        assert main(["incidents", stored, "explain", "1"]) == 0
        out = capsys.readouterr().out
        assert "score components:" in out
        assert "detector votes by feature:" in out
        assert "contributing intervals:" in out
        assert "min-support 300" in out

    def test_incidents_explain_json(self, stored, capsys):
        assert main(
            ["incidents", stored, "explain", "1", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["incident_id"] == 1
        assert doc["provenance"]
        contribution = doc["provenance"][0]
        assert {
            "interval", "support", "hint", "alarmed_features", "votes",
            "input_flows", "selected_flows", "algorithm", "min_support",
        } <= set(contribution)
        assert doc["vote_breakdown"]
        # Votes in the breakdown sum to the per-interval vote counts.
        assert sum(doc["vote_breakdown"].values()) == sum(
            c["votes"] for c in doc["provenance"]
        )

    def test_incidents_explain_unknown_id_exits_2(self, stored, capsys):
        assert main(["incidents", stored, "explain", "9999"]) == 2
        assert "no incident #9999" in capsys.readouterr().err

    def test_incidents_explain_without_id_exits_2(self, stored, capsys):
        assert main(["incidents", stored, "explain"]) == 2
        assert "explain needs an incident id" in capsys.readouterr().err

    def test_stream_store_matches_extract_store(
        self, stored, tmp_path, ddos_trace
    ):
        from repro.flows import write_csv
        from repro.incidents import IncidentStore

        csv = tmp_path / "trace.csv"
        write_csv(ddos_trace.flows, str(csv))
        db = tmp_path / "stream.db"
        assert main(
            ["--seed", "1", "stream", str(csv),
             "--bins", "256", "--training", "16",
             "--min-support", "300", "--store", str(db)]
        ) == 0
        with IncidentStore(stored) as a, IncidentStore(str(db)) as b:
            assert [r.to_json() for r in a.reports()] == [
                r.to_json() for r in b.reports()
            ]


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_single_sourced_with_pyproject(self):
        import tomllib
        from pathlib import Path

        import repro

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        with open(pyproject, "rb") as handle:
            declared = tomllib.load(handle)["project"]["version"]
        assert repro.__version__ == declared


class TestConfigFlag:
    _FLAGS = [
        "--bins", "256", "--training", "16", "--min-support", "300",
    ]

    @pytest.fixture(scope="class")
    def trace_npz(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_npz

        path = tmp_path_factory.mktemp("config-cli") / "trace.npz"
        write_npz(ddos_trace.flows, str(path))
        return str(path)

    @pytest.fixture(scope="class")
    def run_toml(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("config-cli") / "run.toml"
        path.write_text(
            "[detector]\nbins = 256\ntraining_intervals = 16\n\n"
            "[mining]\nmin_support = 300\n"
        )
        return str(path)

    def test_config_file_equals_flag_built_run(
        self, trace_npz, run_toml, capsys
    ):
        """Acceptance: from_toml drives a run identical to the
        equivalent flag-built config."""
        assert main(
            ["--seed", "1", "extract", trace_npz, *self._FLAGS]
        ) == 0
        from_flags = capsys.readouterr().out
        assert "interval 24" in from_flags
        assert main(
            ["--seed", "1", "extract", trace_npz, "--config", run_toml]
        ) == 0
        assert capsys.readouterr().out == from_flags

    def test_explicit_flags_override_file(
        self, trace_npz, run_toml, capsys
    ):
        assert main(
            ["--seed", "1", "extract", trace_npz, "--config", run_toml,
             "--min-support", "350"]
        ) == 0
        out = capsys.readouterr().out
        assert "min support 350" in out

    def test_config_on_detect(self, trace_npz, run_toml, capsys):
        assert main(
            ["--seed", "1", "detect", trace_npz, "--config", run_toml]
        ) == 0
        assert "alarms" in capsys.readouterr().out

    def test_config_on_stream(
        self, ddos_trace, run_toml, tmp_path, capsys
    ):
        from repro.flows import write_csv

        csv = tmp_path / "trace.csv"
        write_csv(ddos_trace.flows, str(csv))
        assert main(
            ["--seed", "1", "stream", str(csv), "--config", run_toml]
        ) == 0
        out = capsys.readouterr().out
        assert "interval 24" in out

    def test_unknown_key_error_exit_2(self, trace_npz, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("[mining]\nmin_suport = 300\n")
        assert main(
            ["extract", trace_npz, "--config", str(bad)]
        ) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "did you mean 'min_support'" in err

    def test_bad_type_error_exit_2(self, trace_npz, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("[mining]\nmin_support = \"lots\"\n")
        assert main(
            ["extract", trace_npz, "--config", str(bad)]
        ) == 2
        assert "must be int" in capsys.readouterr().err

    def test_missing_config_file_exit_2(self, trace_npz, capsys):
        assert main(
            ["extract", trace_npz, "--config", "/nope/run.toml"]
        ) == 2
        assert "not found" in capsys.readouterr().err


class TestFeaturesFlag:
    def test_features_choice_from_registry(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        main(["generate", "--intervals", "4",
              "--flows-per-interval", "200", "--out", str(out)])
        capsys.readouterr()
        assert main(
            ["detect", str(out), "--bins", "64", "--training", "3",
             "--features", "endpoints"]
        ) == 0
        out_text = capsys.readouterr().out
        assert "#packets" not in out_text

    def test_unknown_feature_set_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["detect", "t.npz", "--features", "nope"]
            )


def _toy_cli_miner(transactions, min_support, maximal_only=True, **kwargs):
    from repro.mining import apriori

    return apriori(transactions, min_support, maximal_only=maximal_only)


class TestThirdPartyMinerCLI:
    _FLAGS = [
        "--bins", "256", "--training", "16", "--min-support", "300",
    ]

    @pytest.fixture(scope="class")
    def trace_npz(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_npz

        path = tmp_path_factory.mktemp("plugin-cli") / "trace.npz"
        write_npz(ddos_trace.flows, str(path))
        return str(path)

    def test_runtime_registered_miner_selectable(self, trace_npz, capsys):
        """Acceptance: a miner registered via repro.registry (no edits
        under src/repro/) is selectable from the CLI."""
        from repro.registry import miners

        assert main(
            ["--seed", "1", "extract", trace_npz, *self._FLAGS]
        ) == 0
        reference = capsys.readouterr().out
        miners.register("toyminer", _toy_cli_miner)
        try:
            assert main(
                ["--seed", "1", "extract", trace_npz, *self._FLAGS,
                 "--miner", "toyminer"]
            ) == 0
            assert capsys.readouterr().out == reference
        finally:
            miners.unregister("toyminer")

    def test_entry_point_miner_end_to_end(
        self, trace_npz, capsys, monkeypatch
    ):
        """An entry-point-style plugin miner resolves through
        `repro-extract extract --miner <name>` without registration
        calls in this process."""
        import importlib.metadata

        from repro.registry import miners

        class _EntryPoint:
            name = "epminer"
            value = "tests.integration.test_cli:_toy_cli_miner"

            def load(self):
                return _toy_cli_miner

        real = importlib.metadata.entry_points

        def fake_entry_points(*, group):
            if group == "repro.miners":
                return [_EntryPoint()]
            return real(group=group)

        assert main(
            ["--seed", "1", "extract", trace_npz, *self._FLAGS]
        ) == 0
        reference = capsys.readouterr().out

        monkeypatch.setattr(
            importlib.metadata, "entry_points", fake_entry_points
        )
        miners.refresh()
        try:
            assert "epminer" in miners.names()
            assert main(
                ["--seed", "1", "extract", trace_npz, *self._FLAGS,
                 "--miner", "epminer"]
            ) == 0
            assert capsys.readouterr().out == reference
        finally:
            # Drop the cached entry-point load and rescan without the
            # patched metadata so later tests see only the built-ins.
            monkeypatch.undo()
            miners.refresh()
            if "epminer" in dict(miners):
                miners.unregister("epminer")

    def test_unknown_miner_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["extract", "t.npz", "--miner", "magic"]
            )


class TestParallelFlags:
    @pytest.fixture(scope="class")
    def anomalous_trace(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_npz

        path = tmp_path_factory.mktemp("cli") / "trace.npz"
        write_npz(ddos_trace.flows, str(path))
        return str(path)

    _EXTRACT_ARGS = [
        "--bins", "128", "--training", "8", "--min-support", "60",
    ]

    def test_jobs_flag_parsed(self):
        args = build_parser().parse_args(
            ["extract", "t.npz", "--jobs", "4", "--backend", "process"]
        )
        assert args.jobs == 4
        assert args.backend == "process"
        assert args.partitions is None

    def test_detect_with_jobs(self, anomalous_trace, capsys):
        code = main(
            ["detect", anomalous_trace, "--bins", "128", "--training", "8",
             "--jobs", "2"]
        )
        assert code == 0
        assert "alarms" in capsys.readouterr().out

    def test_extract_jobs_matches_serial(self, anomalous_trace, capsys):
        assert main(
            ["extract", anomalous_trace, *self._EXTRACT_ARGS, "--jobs", "1"]
        ) == 0
        serial = capsys.readouterr().out
        assert "interval" in serial
        assert main(
            ["extract", anomalous_trace, *self._EXTRACT_ARGS,
             "--jobs", "4", "--backend", "thread"]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_extract_son_miner(self, anomalous_trace, capsys):
        assert main(
            ["extract", anomalous_trace, *self._EXTRACT_ARGS, "--jobs", "1"]
        ) == 0
        serial = capsys.readouterr().out
        assert main(
            ["extract", anomalous_trace, *self._EXTRACT_ARGS,
             "--miner", "son"]
        ) == 0
        assert capsys.readouterr().out == serial


class TestFleetCommand:
    @pytest.fixture(scope="class")
    def csv_trace(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_csv

        path = tmp_path_factory.mktemp("fleet-cli") / "trace.csv"
        write_csv(ddos_trace.flows, str(path))
        return str(path)

    _FLEET_ARGS = [
        "--bins", "256", "--training", "16", "--min-support", "300",
    ]

    def test_fleet_table_output(self, csv_trace, capsys):
        assert main(
            ["--seed", "1", "fleet", csv_trace, *self._FLEET_ARGS,
             "--pipelines", "2", "--route", "dst_ip%2"]
        ) == 0
        out = capsys.readouterr().out
        assert "link0:" in out and "link1:" in out
        assert "fleet incidents" in out

    def test_fleet_json_output_and_store_dir(self, csv_trace, tmp_path,
                                             capsys):
        store_dir = tmp_path / "stores"
        assert main(
            ["--seed", "1", "fleet", csv_trace, *self._FLEET_ARGS,
             "--pipelines", "2", "--store-dir", str(store_dir),
             "--format", "json"]
        ) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert sorted(doc) == ["incidents", "pipelines"]
        assert sorted(doc["pipelines"]) == ["link0", "link1"]
        total = sum(p["flows"] for p in doc["pipelines"].values())
        assert total > 0
        assert doc["incidents"], "fleet produced no incidents"
        assert all(
            "pipeline" in entry and "score" in entry
            for entry in doc["incidents"]
        )
        # Human summary goes to stderr in json mode.
        assert "pipelines" in captured.err
        assert sorted(p.name for p in store_dir.iterdir()) == [
            "link0.db", "link1.db",
        ]
        # The stores are real: the incidents subcommand can query them.
        assert main(
            ["incidents", str(store_dir / "link0.db"), "--format", "json"]
        ) == 0

    def test_fleet_config_file(self, csv_trace, tmp_path, capsys):
        config = tmp_path / "fleet.toml"
        config.write_text(
            "[detector]\nbins = 256\ntraining_intervals = 16\n"
            "[mining]\nmin_support = 300\n"
            "[fleet]\nroute = 'dst_ip%2'\n"
            "[fleet.pipelines.east]\n[fleet.pipelines.west]\n"
        )
        assert main(
            ["--seed", "1", "fleet", csv_trace, "--config", str(config)]
        ) == 0
        out = capsys.readouterr().out
        assert "east:" in out and "west:" in out

    def test_fleet_conflicting_pipeline_sources(self, csv_trace, tmp_path,
                                                capsys):
        config = tmp_path / "fleet.toml"
        config.write_text("[fleet.pipelines.a]\n")
        assert main(
            ["fleet", csv_trace, "--config", str(config),
             "--pipelines", "2"]
        ) == 2
        assert "one place" in capsys.readouterr().err

    def test_fleet_requires_pipelines(self, csv_trace, capsys):
        assert main(["fleet", csv_trace]) == 2
        assert "no pipelines" in capsys.readouterr().err

    def test_fleet_rejects_bad_route(self, csv_trace, capsys):
        assert main(
            ["fleet", csv_trace, "--pipelines", "2",
             "--route", "dst_ip%3"]
        ) == 2
        assert "2" in capsys.readouterr().err

    def test_fleet_drops_extractions_by_default(self, csv_trace,
                                                monkeypatch):
        """The CLI only reads counters + stores, so every pipeline
        session runs with the flat-memory retention default (an
        explicit --keep-extractions opts back in)."""
        from repro.fleet import FleetManager

        seen = {}
        original = FleetManager.__init__

        def spy(self, pipelines, **kwargs):
            seen.update(
                {n: c.keep_extractions for n, c in pipelines.items()}
            )
            return original(self, pipelines, **kwargs)

        monkeypatch.setattr(FleetManager, "__init__", spy)
        assert main(
            ["--seed", "1", "fleet", csv_trace, *self._FLEET_ARGS,
             "--pipelines", "2"]
        ) == 0
        assert seen == {"link0": False, "link1": False}
        seen.clear()
        assert main(
            ["--seed", "1", "fleet", csv_trace, *self._FLEET_ARGS,
             "--pipelines", "2", "--keep-extractions"]
        ) == 0
        assert seen == {"link0": True, "link1": True}

    def test_fleet_file_retention_override_wins(self, csv_trace, tmp_path,
                                                monkeypatch):
        from repro.fleet import FleetManager

        config = tmp_path / "fleet.toml"
        config.write_text(
            "[detector]\nbins = 256\ntraining_intervals = 16\n"
            "[mining]\nmin_support = 300\n"
            "[fleet]\nroute = 'dst_ip%2'\n"
            "[fleet.pipelines.east.streaming]\nkeep_extractions = true\n"
            "[fleet.pipelines.west]\n"
        )
        seen = {}
        original = FleetManager.__init__

        def spy(self, pipelines, **kwargs):
            seen.update(
                {n: c.keep_extractions for n, c in pipelines.items()}
            )
            return original(self, pipelines, **kwargs)

        monkeypatch.setattr(FleetManager, "__init__", spy)
        assert main(
            ["--seed", "1", "fleet", csv_trace, "--config", str(config)]
        ) == 0
        assert seen == {"east": True, "west": False}


class TestTraceFlag:
    """--trace/--trace-format: span export without output drift."""

    @pytest.fixture(scope="class")
    def csv_trace(self, tmp_path_factory, ddos_trace):
        from repro.flows import write_csv

        path = tmp_path_factory.mktemp("trace-cli") / "trace.csv"
        write_csv(ddos_trace.flows, str(path))
        return str(path)

    _ARGS = [
        "--bins", "256", "--training", "16", "--min-support", "300",
    ]

    def test_stream_trace_writes_jsonl(self, csv_trace, tmp_path, capsys):
        out = tmp_path / "spans.jsonl"
        assert main(
            ["--seed", "1", "stream", csv_trace, *self._ARGS,
             "--trace", str(out)]
        ) == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        assert lines
        docs = [json.loads(line) for line in lines]
        for doc in docs:
            assert {
                "trace_id", "span_id", "parent_id", "name",
                "start", "end", "attributes", "events",
            } <= set(doc)
        root = docs[0]
        assert root["name"] == "session.run"
        # write_trace runs after the session closed: the root is ended.
        assert root["end"] is not None
        names = {doc["name"] for doc in docs}
        assert {"stage.binning", "session.interval",
                "stage.detection", "stage.mining"} <= names

    def test_stream_output_identical_with_and_without_trace(
        self, csv_trace, tmp_path, capsys
    ):
        assert main(
            ["--seed", "1", "stream", csv_trace, *self._ARGS]
        ) == 0
        plain = capsys.readouterr().out
        assert main(
            ["--seed", "1", "stream", csv_trace, *self._ARGS,
             "--trace", str(tmp_path / "spans.jsonl")]
        ) == 0
        traced = capsys.readouterr().out
        assert "interval 24" in plain
        assert traced == plain

    def test_extract_trace_chrome_format(self, csv_trace, tmp_path, capsys):
        out = tmp_path / "spans.chrome.json"
        assert main(
            ["--seed", "1", "extract", csv_trace, *self._ARGS,
             "--trace", str(out), "--trace-format", "chrome"]
        ) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(
            e["name"] == "session.run" for e in doc["traceEvents"]
        )

    def test_trace_to_stdout(self, csv_trace, capsys):
        assert main(
            ["--seed", "1", "stream", csv_trace, *self._ARGS,
             "--format", "json", "--trace", "-", "--trace-format", "text"]
        ) == 0
        out = capsys.readouterr().out
        assert "session.run" in out
        assert "stage.detection" in out

    def test_fleet_trace_nests_sessions(self, csv_trace, tmp_path, capsys):
        out = tmp_path / "fleet-spans.jsonl"
        assert main(
            ["--seed", "1", "fleet", csv_trace, *self._ARGS,
             "--pipelines", "2", "--route", "dst_ip%2",
             "--trace", str(out)]
        ) == 0
        capsys.readouterr()
        docs = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        roots = [d for d in docs if d["name"] == "fleet.run"]
        assert len(roots) == 1
        sessions = [d for d in docs if d["name"] == "session.run"]
        assert len(sessions) == 2
        assert all(
            d["parent_id"] == roots[0]["span_id"] for d in sessions
        )
        assert any(d["name"] == "fleet.rank" for d in docs)

    def test_config_trace_path_used_without_flag(
        self, csv_trace, tmp_path, capsys
    ):
        out = tmp_path / "config-spans.txt"
        config = tmp_path / "run.toml"
        config.write_text(
            "[detector]\nbins = 256\ntraining_intervals = 16\n"
            "[mining]\nmin_support = 300\n"
            f"[obs]\ntrace_path = '{out}'\ntrace_format = 'text'\n"
        )
        assert main(
            ["--seed", "1", "stream", csv_trace, "--config", str(config)]
        ) == 0
        capsys.readouterr()
        text = out.read_text()
        assert text.startswith("trace ")
        assert "session.run" in text

    def test_bad_trace_format_in_config_rejected(
        self, csv_trace, tmp_path, capsys
    ):
        config = tmp_path / "bad.toml"
        config.write_text("[obs]\ntrace_format = 'otlp'\n")
        assert main(
            ["stream", csv_trace, "--config", str(config)]
        ) == 2
        assert "trace_format" in capsys.readouterr().err
