"""Server lifecycle: listeners, signals, shutdown, and resume.

:class:`ServiceSupervisor` is the asyncio shell around
:class:`~repro.service.app.ServiceApp`: it binds the HTTP listener and
the optional line-oriented TCP ingest socket, serves one request per
HTTP connection (``Connection: close`` keeps the protocol trivial), and
on SIGINT/SIGTERM drains the listeners and writes one final checkpoint
so a *graceful* stop never loses ingest progress.  A ``kill -9`` loses
at most the batches since the last periodic checkpoint - which is
exactly what the resume path recovers.

:func:`run_service` is the blocking entry point behind
``repro-extract serve`` and :func:`repro.api.serve`: it applies the
resume policy (an existing checkpoint file demands an explicit
``resume=True`` so two daemons cannot silently fight over one state
file), restores the fleet, and runs the supervisor to completion.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from collections.abc import Callable
from typing import TextIO

from repro.core.config import ServiceSettings
from repro.errors import (
    CheckpointError,
    ConfigError,
    ReproError,
    ServiceError,
)
from repro.federation.federator import Federator
from repro.fleet.manager import FleetManager
from repro.service.app import ServiceApp
from repro.service.checkpoint import read_checkpoint, restore_fleet
from repro.service.protocol import read_request, render_response


class ServiceSupervisor:
    """Own the daemon's sockets and serve the app over them.

    Args:
        app: the dispatcher (owns ingest sequencing + checkpoints).
        host: bind address for both listeners.
        port: HTTP port (0 = ephemeral; read the bound port from
            :attr:`http_port` after :meth:`start`).
        ingest_port: optional TCP line-ingest port (``None`` disables
            the socket; 0 = ephemeral).
        max_body_bytes: largest accepted HTTP request body.
    """

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 8181,
        ingest_port: int | None = None,
        max_body_bytes: int = 64 * 1024 * 1024,
    ):
        self.app = app
        self.host = host
        self.port = port
        self.ingest_port = ingest_port
        self.max_body_bytes = max_body_bytes
        self._http_server: asyncio.Server | None = None
        self._ingest_server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def http_port(self) -> int:
        """The bound HTTP port (meaningful after :meth:`start`)."""
        if self._http_server is None:
            raise ServiceError("supervisor not started")
        sockets = self._http_server.sockets
        return int(sockets[0].getsockname()[1])

    @property
    def bound_ingest_port(self) -> int | None:
        """The bound TCP ingest port, or ``None`` when disabled."""
        if self._ingest_server is None:
            return None
        sockets = self._ingest_server.sockets
        return int(sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind the listeners (idempotent against double starts)."""
        if self._http_server is not None:
            raise ServiceError("supervisor already started")
        try:
            self._http_server = await asyncio.start_server(
                self._serve_http, host=self.host, port=self.port
            )
            if self.ingest_port is not None:
                self._ingest_server = await asyncio.start_server(
                    self._serve_ingest,
                    host=self.host,
                    port=self.ingest_port,
                )
        except OSError as exc:
            await self.stop(final_checkpoint=False)
            raise ServiceError(
                f"cannot bind {self.host}:{self.port}: {exc}"
            ) from exc

    def request_shutdown(self) -> None:
        """Ask the serve loop to drain and exit (signal-safe)."""
        self._shutdown.set()

    async def stop(self, final_checkpoint: bool = True) -> None:
        """Close the listeners; optionally write a final checkpoint."""
        for server in (self._http_server, self._ingest_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._http_server = None
        self._ingest_server = None
        if (
            final_checkpoint
            and self.app.checkpoint_path is not None
            and self.app.sequence != self.app.checkpointed_sequence
        ):
            self.app.checkpoint()

    async def serve(
        self, on_ready: Callable[["ServiceSupervisor"], None] | None = None
    ) -> None:
        """Start, serve until :meth:`request_shutdown`, then drain.

        Installs SIGINT/SIGTERM handlers when the loop supports them
        (the main thread); test harnesses driving the supervisor from
        helper threads simply call :meth:`request_shutdown` directly.
        ``on_ready`` fires once the listeners are bound (the CLI's
        address announcement; readiness probes in tests).
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await self._shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handlers
    # ------------------------------------------------------------------
    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader, self.max_body_bytes)
            except ServiceError as exc:
                body = (
                    '{"error": ' + _json_string(str(exc)) + "}\n"
                ).encode("utf-8")
                status = 413 if "max_body_bytes" in str(exc) else 400
                writer.write(render_response(status, body))
                await writer.drain()
                return
            if request is None:
                return
            status, body, content_type = self.app.handle(request)
            writer.write(render_response(status, body, content_type))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_ingest(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The TCP line protocol: each line is one CSV flow row
        (header-less, column order as ``/ingest``); rows are batched to
        ``chunk_rows`` and fed on the batch boundary and at EOF.  Each
        accepted batch is acknowledged ``ok <rows> <sequence>``; a
        malformed batch is dropped and answered ``err <message>``."""
        lines: list[str] = []

        async def flush() -> None:
            nonlocal lines
            if not lines:
                return
            batch, lines = lines, []
            try:
                rows, sequence = self.app.ingest_lines(batch)
                writer.write(f"ok {rows} {sequence}\n".encode())
            except ReproError as exc:
                message = str(exc).replace("\n", " ")
                writer.write(f"err {message}\n".encode())
            await writer.drain()

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                lines.append(text)
                if len(lines) >= self.app.chunk_rows:
                    await flush()
            await flush()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def _json_string(text: str) -> str:
    return json.dumps(text)


def resume_sequence(
    fleet: FleetManager,
    settings: ServiceSettings,
    resume: bool,
    federator: Federator | None = None,
) -> int:
    """Apply the resume policy; returns the starting ingest sequence.

    * ``resume=True`` with an existing checkpoint: restore the fleet
      (and the federator, when the checkpoint carries a ``federation``
      block) from it and continue its sequence.
    * ``resume=True`` without a checkpoint file: cold start (sequence
      0) - restart scripts stay idempotent on first boot.
    * ``resume=False`` but a checkpoint file exists: refuse - the
      caller must either resume it or delete it explicitly; silently
      overwriting another run's state file loses its progress.
    """
    path = settings.checkpoint_path
    if resume and path is None:
        raise ConfigError(
            "resume needs [service] checkpoint_path; this config "
            "runs without checkpointing"
        )
    if path is None or not os.path.exists(path):
        return 0
    if not resume:
        raise ServiceError(
            f"checkpoint {path} already exists; pass --resume to "
            f"continue that run, or remove the file to start fresh"
        )
    with fleet.tracer.span("service.resume", path=os.fspath(path)):
        doc = read_checkpoint(path)
        sequence = restore_fleet(fleet, doc)
        federation_state = doc.get("federation")
        if federation_state is not None and federator is None:
            raise CheckpointError(
                f"checkpoint {path} carries federation state, but "
                f"this daemon has no [federation] configured; its "
                f"buffered digests would be dropped silently"
            )
        if federator is not None and federation_state is not None:
            federator.from_state(federation_state)
        return sequence


def run_service(
    fleet: FleetManager,
    settings: ServiceSettings,
    resume: bool = False,
    log: TextIO | None = None,
    federator: Federator | None = None,
) -> None:
    """Run the daemon against a live fleet until SIGINT/SIGTERM.

    The caller owns the fleet's lifecycle (build it, ``close()`` it);
    this function owns the daemon's: resume policy, app wiring,
    listeners, and graceful shutdown with a final checkpoint.  With a
    ``federator`` the daemon additionally accepts ``POST /digest`` and
    checkpoints the federation state alongside the fleet's.
    """
    sequence = resume_sequence(fleet, settings, resume, federator)
    app = ServiceApp(
        fleet,
        checkpoint_path=settings.checkpoint_path,
        checkpoint_every=settings.checkpoint_every,
        checkpoint_sync=settings.checkpoint_sync,
        chunk_rows=settings.chunk_rows,
        sequence=sequence,
        federator=federator,
    )
    supervisor = ServiceSupervisor(
        app,
        host=settings.host,
        port=settings.port,
        ingest_port=settings.ingest_port,
        max_body_bytes=settings.max_body_bytes,
    )

    def announce(sup: ServiceSupervisor) -> None:
        stream = log if log is not None else sys.stderr
        print(
            f"serving http://{sup.host}:{sup.http_port}"
            + (
                f" ingest tcp://{sup.host}:{sup.bound_ingest_port}"
                if sup.bound_ingest_port is not None
                else ""
            )
            + (f" (resumed at sequence {sequence})" if sequence else ""),
            file=stream,
            flush=True,
        )

    asyncio.run(supervisor.serve(on_ready=announce))
