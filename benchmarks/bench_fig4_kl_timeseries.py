"""Fig. 4: KL distance time series and its first difference (srcIP, ~2 days).

Paper: the KL time series of the source-IP feature over roughly two days
shows spikes at anomalies over a quiet baseline; the first difference is
~N(0, sigma^2) and the dashed MAD threshold separates the spikes.  We
regenerate the two-day slice with two injected events and verify the
series shape: spikes at the event intervals, quiet diurnal baseline, and
first-difference normality in the bulk.
"""

import numpy as np

from repro.detection.detector import DetectorConfig
from repro.detection.features import Feature
from repro.detection.manager import DetectorBank
from repro.traffic.scenarios import two_day_trace

TRAINING = 48


def _run(trace):
    config = DetectorConfig(
        clones=3, bins=1024, vote_threshold=3, training_intervals=TRAINING
    )
    bank = DetectorBank(config, features=(Feature.SRC_IP,), seed=5)
    return bank.run(trace.flows, trace.interval_seconds, origin=0.0)


def test_fig4_kl_time_series(benchmark, report):
    trace = two_day_trace(flows_per_interval=1500, seed=11)

    run = benchmark.pedantic(_run, args=(trace,), rounds=1, iterations=1)

    kl = run.kl_series(Feature.SRC_IP, clone=0)
    diff = run.diff_series(Feature.SRC_IP, clone=0)
    sigma = run.sigma(Feature.SRC_IP, clone=0)
    threshold = 4.0 * sigma
    event_intervals = sorted(trace.anomalous_intervals())

    quiet = np.ones(len(kl), dtype=bool)
    for idx in event_intervals:
        quiet[max(0, idx - 1): idx + 2] = False
    quiet[:2] = False

    report(
        "",
        "Fig. 4 - KL time series, srcIP feature, 2 days (192 intervals)",
        f"  events injected at intervals {event_intervals}",
        f"  KL at events: "
        + ", ".join(f"{kl[i]:.3f}" for i in event_intervals)
        + f"; baseline mean {kl[quiet].mean():.3f} "
        f"(max {kl[quiet].max():.3f})",
        f"  first-difference sigma (MAD): {sigma:.4f}; "
        f"threshold 4*sigma = {threshold:.4f}",
        f"  diff at events: "
        + ", ".join(f"{diff[i]:+.3f}" for i in event_intervals),
    )

    # Spikes at the events dominate the quiet baseline (the srcIP
    # histogram is sparse at this scale, so compare against the quiet
    # maximum, and against the actual alarm rule on the difference).
    for idx in event_intervals:
        assert kl[idx] > kl[quiet].max()
        assert diff[idx] > threshold
    # One-sided rule: the baseline never crosses upward (allow one fluke).
    crossings = int((diff[quiet] > threshold).sum())
    assert crossings <= 2
    # First difference roughly centred on zero in the bulk.
    assert abs(np.median(diff[quiet])) < sigma
