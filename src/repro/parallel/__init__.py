"""Parallel partitioned extraction engine.

The paper names "dealing with big network traffic data" as the open
scaling problem; this package answers it with three layers:

* :mod:`repro.parallel.executor` - pluggable ``serial`` / ``thread`` /
  ``process`` backends behind one ``map``-shaped surface;
* :mod:`repro.parallel.son` - a two-pass partitioned frequent item-set
  miner (SON) provably equivalent to the serial miners;
* :mod:`repro.parallel.bank` / :mod:`repro.parallel.engine` - the
  per-feature detector fan-out and the engine tying both stages to one
  shared executor.
"""

from repro.parallel.bank import ParallelDetectorBank
from repro.parallel.engine import ParallelEngine
from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    resolve_jobs,
)
from repro.parallel.son import SON_LOCAL_MINERS, son

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "resolve_jobs",
    "son",
    "SON_LOCAL_MINERS",
    "ParallelDetectorBank",
    "ParallelEngine",
]
