"""``repro-extract extract`` - the full batch extraction pipeline."""

from __future__ import annotations

import argparse

from repro.cli._common import (
    TrackedAction,
    add_config_arg,
    add_detector_args,
    add_format_arg,
    add_metrics_args,
    add_mining_args,
    add_parallel_args,
    add_store_arg,
    add_trace_args,
    build_metrics_registry,
    build_tracer,
    extraction_config,
    load_trace,
    positive_int,
    write_metrics,
    write_trace,
)
from repro.core import AnomalyExtractor, ExtractionReport
from repro.sinks import TeeSink


def add_parser(sub: argparse._SubParsersAction) -> None:
    ext = sub.add_parser("extract", help="full online extraction")
    ext.add_argument("trace")
    add_config_arg(ext)
    add_detector_args(ext)
    add_mining_args(ext)
    add_parallel_args(ext)
    ext.add_argument("--partitions", type=positive_int, default=None,
                     action=TrackedAction,
                     help="transaction shards per mining call "
                     "(default: one per worker)")
    add_format_arg(ext)
    add_store_arg(ext)
    add_metrics_args(ext)
    add_trace_args(ext)
    ext.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    flows = load_trace(args.trace)
    config = extraction_config(args)
    registry = build_metrics_registry(args, config)
    tracer = build_tracer(args, config)
    with AnomalyExtractor(
        config, seed=args.seed, metrics=registry, tracer=tracer
    ) as extractor:
        if args.format == "json":
            # Collect the reports run_trace builds anyway (teeing into
            # the store when one is configured) instead of rebuilding
            # each one for printing.
            reports: list[ExtractionReport] = []
            sink = (
                TeeSink(extractor.store, reports)
                if extractor.store is not None else reports
            )
            result = extractor.run_trace(
                flows, args.interval_seconds, sink=sink
            )
        else:
            result = extractor.run_trace(flows, args.interval_seconds)
    if args.format == "json":
        for report in reports:
            print(report.to_json())
        write_metrics(registry, args)
        write_trace(tracer, args, config)
        return 0
    if not result.extractions:
        print("no extractions (no alarms with usable meta-data)")
        write_metrics(registry, args)
        write_trace(tracer, args, config)
        return 0
    for extraction in result.extractions:
        print(extraction.render())
        print()
    write_metrics(registry, args)
    write_trace(tracer, args, config)
    return 0
