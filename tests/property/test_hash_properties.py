"""Property-based tests for universal hashing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.hashing import MERSENNE_PRIME, UniversalHash


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=1, max_value=MERSENNE_PRIME - 1),
    b=st.integers(min_value=0, max_value=MERSENNE_PRIME - 1),
    bins=st.integers(min_value=1, max_value=1 << 20),
    values=st.lists(
        st.integers(min_value=0, max_value=2**63 - 1),
        min_size=1,
        max_size=20,
    ),
)
def test_vectorized_equals_scalar(a, b, bins, values):
    """The uint64 split-multiply must match exact Python arithmetic."""
    fn = UniversalHash(a=a, b=b, bins=bins)
    array = np.array(values, dtype=np.uint64)
    assert fn.hash_array(array).tolist() == [fn(v) for v in values]


@settings(max_examples=100, deadline=None)
@given(
    a=st.integers(min_value=1, max_value=MERSENNE_PRIME - 1),
    b=st.integers(min_value=0, max_value=MERSENNE_PRIME - 1),
    bins=st.integers(min_value=1, max_value=4096),
    value=st.integers(min_value=0, max_value=2**48),
)
def test_output_in_range(a, b, bins, value):
    fn = UniversalHash(a=a, b=b, bins=bins)
    assert 0 <= fn(value) < bins


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(min_value=1, max_value=MERSENNE_PRIME - 1),
    b=st.integers(min_value=0, max_value=MERSENNE_PRIME - 1),
    value=st.integers(min_value=0, max_value=2**48),
)
def test_definition_matches_formula(a, b, value):
    fn = UniversalHash(a=a, b=b, bins=977)
    assert fn(value) == ((a * value + b) % MERSENNE_PRIME) % 977


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    bins=st.integers(min_value=2, max_value=2048),
)
def test_family_reproducible(seed, bins):
    from repro.sketch.hashing import HashFamily

    first = HashFamily(bins=bins, seed=seed).take(2)
    second = HashFamily(bins=bins, seed=seed).take(2)
    assert first == second
