"""Supervisor end-to-end: real sockets, lifecycle, resume policy."""

from __future__ import annotations

import asyncio
import io
import json
import os
import re
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import ServiceSettings
from repro.errors import ConfigError, ServiceError
from repro.fleet.manager import FleetManager
from repro.flows.io import write_csv
from repro.obs.metrics import MetricsRegistry
from repro.service.app import ServiceApp
from repro.service.checkpoint import read_checkpoint
from repro.service.supervisor import (
    ServiceSupervisor,
    resume_sequence,
    run_service,
)


def build_fleet(config, store_dir=None):
    return FleetManager(
        {"linkA": config, "linkB": config},
        route="dst_ip%2",
        interval_seconds=10.0,
        store_dir=store_dir,
        metrics=MetricsRegistry(),
    )


def csv_bytes(tmp_dir, chunk) -> bytes:
    path = os.path.join(tmp_dir, "chunk.csv")
    write_csv(chunk, path)
    with open(path, "rb") as handle:
        return handle.read()


def http(port, method, path, body=None):
    """One blocking HTTP exchange (callers run it in an executor -
    calling it on the event-loop thread would deadlock the server)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class TestSupervisorEndToEnd:
    def test_http_tcp_lifecycle_and_final_checkpoint(
        self, service_config, service_chunks, tmp_path
    ):
        """The full daemon surface over real sockets, then a graceful
        stop that must flush one final checkpoint."""
        fleet = build_fleet(service_config, tmp_path / "stores")
        ckpt = tmp_path / "fleet.ckpt"
        app = ServiceApp(
            fleet, checkpoint_path=str(ckpt), checkpoint_every=4
        )
        supervisor = ServiceSupervisor(app, port=0, ingest_port=0)

        async def drive():
            await supervisor.start()
            port = supervisor.http_port
            loop = asyncio.get_running_loop()

            def call(method, path, body=None):
                return loop.run_in_executor(
                    None, http, port, method, path, body
                )

            for chunk in service_chunks[:6]:
                status, body = await call(
                    "POST", "/ingest", csv_bytes(tmp_path, chunk)
                )
                assert status == 200, body

            # TCP line ingest: one batch of header-less CSV rows.
            raw = csv_bytes(tmp_path, service_chunks[6])
            rows = raw.decode().splitlines()[1:]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", supervisor.bound_ingest_port
            )
            writer.write(("\n".join(rows) + "\n").encode())
            writer.write_eof()
            ack = (await reader.readline()).decode().strip()
            assert ack == f"ok {len(rows)} 7"
            writer.close()
            await writer.wait_closed()

            # A malformed TCP batch is refused with err, not a crash.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", supervisor.bound_ingest_port
            )
            writer.write(b"not,a,flow\n")
            writer.write_eof()
            err = (await reader.readline()).decode()
            assert err.startswith("err ")
            writer.close()
            await writer.wait_closed()

            status, body = await call("GET", "/healthz")
            health = json.loads(body)
            assert (status, health["sequence"]) == (200, 7)
            assert health["checkpointed_sequence"] == 4
            assert health["checkpointing"] is True

            status, body = await call("GET", "/incidents")
            assert status == 200
            assert json.loads(body)["count"] >= 0

            status, body = await call("GET", "/metrics")
            assert status == 200
            assert b"repro_service_requests_total" in body

            status, body = await call("GET", "/bogus")
            assert status == 404

            status, body = await call("POST", "/ingest?format=nope", b"x")
            assert status == 400

            await supervisor.stop()

        try:
            asyncio.run(drive())
            # Graceful stop wrote the final checkpoint (sequence 7,
            # which the periodic every-4 policy had not covered).
            assert read_checkpoint(ckpt)["sequence"] == 7
        finally:
            fleet.close()

    def test_oversized_body_rejected_with_413(
        self, service_config, service_chunks, tmp_path
    ):
        fleet = build_fleet(service_config)
        app = ServiceApp(fleet)
        supervisor = ServiceSupervisor(
            app, port=0, max_body_bytes=1024
        )

        async def drive():
            await supervisor.start()
            loop = asyncio.get_running_loop()
            status, body = await loop.run_in_executor(
                None, http, supervisor.http_port, "POST", "/ingest",
                b"x" * 4096,
            )
            assert status == 413
            assert "max_body_bytes" in json.loads(body)["error"]
            await supervisor.stop()

        try:
            asyncio.run(drive())
        finally:
            fleet.close()

    def test_double_start_refused(self, service_config):
        fleet = build_fleet(service_config)
        supervisor = ServiceSupervisor(ServiceApp(fleet), port=0)

        async def drive():
            await supervisor.start()
            with pytest.raises(ServiceError, match="already started"):
                await supervisor.start()
            await supervisor.stop()

        try:
            asyncio.run(drive())
        finally:
            fleet.close()


class TestResumePolicy:
    def settings(self, **kwargs):
        return ServiceSettings.from_data(None) if not kwargs else (
            ServiceSettings(**kwargs)
        )

    def test_resume_without_checkpoint_path_is_config_error(
        self, service_config
    ):
        fleet = build_fleet(service_config)
        try:
            with pytest.raises(ConfigError, match="checkpoint_path"):
                resume_sequence(fleet, self.settings(), resume=True)
        finally:
            fleet.close()

    def test_missing_file_cold_starts_at_zero(
        self, service_config, tmp_path
    ):
        fleet = build_fleet(service_config, tmp_path / "stores")
        settings = self.settings(
            checkpoint_path=str(tmp_path / "absent.ckpt")
        )
        try:
            assert resume_sequence(fleet, settings, resume=True) == 0
            assert resume_sequence(fleet, settings, resume=False) == 0
        finally:
            fleet.close()

    def test_existing_file_demands_explicit_resume(
        self, service_config, service_chunks, tmp_path
    ):
        ckpt = tmp_path / "fleet.ckpt"
        first = build_fleet(service_config, tmp_path / "stores")
        app = ServiceApp(first, checkpoint_path=str(ckpt))
        try:
            for chunk in service_chunks[:4]:
                first.feed(chunk)
                app.batch_accepted(len(chunk))
        finally:
            first.close()
        settings = self.settings(checkpoint_path=str(ckpt))

        second = build_fleet(service_config, tmp_path / "stores")
        try:
            with pytest.raises(ServiceError, match="--resume"):
                resume_sequence(second, settings, resume=False)
            assert resume_sequence(second, settings, resume=True) == 4
        finally:
            second.close()


class TestRunService:
    def test_blocking_entry_point_serves_until_sigterm(
        self, service_config, service_chunks, tmp_path
    ):
        """run_service announces its ephemeral port, serves ingest,
        and on SIGTERM drains and writes the final checkpoint."""
        fleet = build_fleet(service_config, tmp_path / "stores")
        ckpt = tmp_path / "fleet.ckpt"
        settings = ServiceSettings(
            port=0, checkpoint_path=str(ckpt), checkpoint_every=100
        )
        log = io.StringIO()
        failures: list[str] = []

        def client():
            deadline = time.monotonic() + 15
            port = None
            while time.monotonic() < deadline:
                match = re.search(
                    r"http://127\.0\.0\.1:(\d+)", log.getvalue()
                )
                if match:
                    port = int(match.group(1))
                    break
                time.sleep(0.05)
            try:
                if port is None:
                    failures.append("server never announced a port")
                    return
                status, body = http(
                    port, "POST", "/ingest",
                    csv_bytes(tmp_path, service_chunks[0]),
                )
                if status != 200:
                    failures.append(f"ingest failed: {status} {body!r}")
            finally:
                # Always deliver the signal, or run_service never
                # returns and the test hangs.
                os.kill(os.getpid(), signal.SIGTERM)

        thread = threading.Thread(target=client)
        thread.start()
        try:
            run_service(fleet, settings, log=log)
        finally:
            thread.join(timeout=15)
            fleet.close()
        assert failures == []
        assert "serving http://127.0.0.1:" in log.getvalue()
        # checkpoint_every=100 never fired; this is the shutdown flush.
        assert read_checkpoint(ckpt)["sequence"] == 1
