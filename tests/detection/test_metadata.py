"""Unit tests for anomaly meta-data and flow matching."""

import numpy as np
import pytest

from repro.detection.features import Feature
from repro.detection.metadata import (
    TABLE1_DETECTORS,
    Metadata,
    require_nonempty,
)
from repro.errors import ExtractionError


@pytest.fixture()
def metadata():
    meta = Metadata()
    meta.add(Feature.DST_PORT, np.array([80], dtype=np.uint64))
    meta.add(Feature.SRC_IP, np.array([10, 13], dtype=np.uint64))
    return meta


class TestMetadata:
    def test_add_merges_values(self):
        meta = Metadata()
        meta.add(Feature.DST_PORT, np.array([80]))
        meta.add(Feature.DST_PORT, np.array([25, 80]))
        assert meta.get(Feature.DST_PORT).tolist() == [25, 80]

    def test_get_missing_feature_empty(self):
        assert Metadata().get(Feature.SRC_IP).tolist() == []

    def test_total_values(self, metadata):
        assert metadata.total_values() == 3
        assert not metadata.is_empty()

    def test_features_lists_only_nonempty(self, metadata):
        metadata.add(Feature.PACKETS, np.array([], dtype=np.uint64))
        assert set(metadata.features()) == {Feature.DST_PORT, Feature.SRC_IP}

    def test_match_union(self, metadata, tiny_flows):
        mask = metadata.match_union(tiny_flows)
        # dst_port == 80 matches rows 0,1,3,5; src_ip 10 matches 0,1,5;
        # src_ip 13 matches row 4 -> union is 0,1,3,4,5.
        assert mask.tolist() == [True, True, False, True, True, True]

    def test_match_intersection(self, metadata, tiny_flows):
        mask = metadata.match_intersection(tiny_flows)
        # Needs dst_port in {80} AND src_ip in {10, 13}: rows 0,1,5.
        assert mask.tolist() == [True, True, False, False, False, True]

    def test_union_superset_of_intersection(self, metadata, tiny_flows):
        union = metadata.match_union(tiny_flows)
        inter = metadata.match_intersection(tiny_flows)
        assert (union | inter).tolist() == union.tolist()

    def test_empty_metadata_matches_nothing(self, tiny_flows):
        meta = Metadata()
        assert not meta.match_union(tiny_flows).any()
        assert not meta.match_intersection(tiny_flows).any()

    def test_flow_disjoint_metadata_intersection_empty(self, tiny_flows):
        # Port 443 appears only on row 2, port 25 only on row 4: the
        # multi-stage situation - union catches both, intersection none.
        meta = Metadata()
        meta.add(Feature.DST_PORT, np.array([443]))
        meta.add(Feature.SRC_PORT, np.array([5000]))
        union = meta.match_union(tiny_flows)
        inter = meta.match_intersection(tiny_flows)
        assert union.sum() == 2
        assert inter.sum() == 0

    def test_union_combinator(self):
        a = Metadata()
        a.add(Feature.DST_PORT, np.array([80]))
        b = Metadata()
        b.add(Feature.DST_PORT, np.array([25]))
        b.add(Feature.SRC_IP, np.array([1]))
        merged = Metadata.union([a, b])
        assert merged.get(Feature.DST_PORT).tolist() == [25, 80]
        assert merged.get(Feature.SRC_IP).tolist() == [1]

    def test_repr_compact(self, metadata):
        assert "dstPort:1" in repr(metadata)

    def test_require_nonempty(self, metadata):
        require_nonempty(metadata, "test")  # no raise
        with pytest.raises(ExtractionError, match="no meta-data"):
            require_nonempty(Metadata(), "test")


class TestTable1:
    def test_histogram_detector_first_row(self):
        assert "Histogram" in TABLE1_DETECTORS[0].detector
        assert "feature values" in TABLE1_DETECTORS[0].metadata

    def test_has_multiple_detector_families(self):
        assert len(TABLE1_DETECTORS) >= 4
