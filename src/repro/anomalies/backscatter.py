"""Backscatter injector.

Backscatter is the reply traffic of a spoofed-source DoS attack happening
elsewhere: the victim answers SYN/ACKs or RSTs to the spoofed addresses,
some of which fall inside the monitored address range.  The paper's
Table II observed it as flows where "each flow has a different source IP
address and a random source port number" sharing destination port 9022 —
i.e. the only frequent item is the destination port (plus the constant
tiny flow size).
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyInjector, uniform_times
from repro.errors import ConfigError
from repro.flows.record import PROTO_TCP
from repro.flows.table import FlowTable


class BackscatterInjector(AnomalyInjector):
    """Single-packet replies from random sources to a fixed port."""

    kind = "backscatter"

    def __init__(
        self,
        dst_port: int = 9022,
        flows: int = 22_667,
        dest_space_start: int = 0x82_3B_00_00,
        dest_space_size: int = 8_192,
        reply_bytes: int = 40,
    ):
        if flows < 1:
            raise ConfigError(f"flows must be >= 1: {flows}")
        if not 0 <= dst_port <= 65535:
            raise ConfigError(f"bad destination port: {dst_port}")
        self.dst_port = dst_port
        self.flows = flows
        self.dest_space_start = dest_space_start
        self.dest_space_size = dest_space_size
        self.reply_bytes = reply_bytes

    def generate(
        self,
        rng: np.random.Generator,
        start: float,
        duration: float,
        label: int,
    ) -> FlowTable:
        self._check_generate_args(start, duration, label)
        n = self.flows
        # Every flow from a different (random 32-bit) source address with
        # a random source port: the defining property the paper used to
        # recognize this class.
        src = rng.integers(0x01000000, 0xDF000000, size=n, dtype=np.uint64)
        dst = np.uint64(self.dest_space_start) + rng.integers(
            0, self.dest_space_size, size=n, dtype=np.uint64
        )
        return FlowTable.from_arrays(
            src_ip=src,
            dst_ip=dst,
            src_port=rng.integers(1, 65536, size=n, dtype=np.uint64),
            dst_port=np.full(n, self.dst_port, dtype=np.uint64),
            protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
            packets=np.ones(n, dtype=np.uint64),
            bytes_=np.full(n, self.reply_bytes, dtype=np.uint64),
            start=uniform_times(rng, n, start, duration),
            label=np.full(n, label, dtype=np.int64),
        )

    def describe(self) -> str:
        return (
            f"Backscatter: dstPort {self.dst_port}, "
            f"{self.flows} single-packet replies"
        )

    def signature(self) -> dict[str, int]:
        return {
            "dst_port": self.dst_port,
            "packets": 1,
            "bytes": self.reply_bytes,
        }
