"""Unit tests for the universal hash family."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sketch.hashing import MERSENNE_PRIME, HashFamily, UniversalHash


class TestUniversalHash:
    def test_scalar_matches_vector(self):
        fn = UniversalHash(a=12345, b=678, bins=64)
        values = np.arange(1000, dtype=np.uint64)
        vector = fn.hash_array(values)
        scalars = [fn(int(v)) for v in values]
        assert list(vector) == scalars

    def test_output_range(self):
        fn = UniversalHash(a=99991, b=17, bins=10)
        hashed = fn.hash_array(np.arange(10_000, dtype=np.uint64))
        assert hashed.min() >= 0
        assert hashed.max() < 10

    def test_deterministic(self):
        fn = UniversalHash(a=31337, b=4242, bins=128)
        values = np.arange(256, dtype=np.uint64)
        assert np.array_equal(fn.hash_array(values), fn.hash_array(values))

    def test_large_multiplier_no_overflow(self):
        # Multipliers close to the Mersenne prime stress the split
        # multiply; scalar (exact Python int) and vector paths must agree.
        fn = UniversalHash(a=MERSENNE_PRIME - 5, b=MERSENNE_PRIME - 11, bins=1024)
        values = np.array([0, 1, 2**31, 2**32 - 1], dtype=np.uint64)
        assert list(fn.hash_array(values)) == [fn(int(v)) for v in values]

    def test_roughly_uniform(self):
        fn = UniversalHash(a=7919, b=104729, bins=16)
        hashed = fn.hash_array(np.arange(160_000, dtype=np.uint64))
        counts = np.bincount(hashed, minlength=16)
        # Each bin should get ~10k; allow generous slack.
        assert counts.min() > 8_000
        assert counts.max() < 12_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(a=0, b=0, bins=16),
            dict(a=MERSENNE_PRIME, b=0, bins=16),
            dict(a=1, b=-1, bins=16),
            dict(a=1, b=MERSENNE_PRIME, bins=16),
            dict(a=1, b=0, bins=0),
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ConfigError):
            UniversalHash(**kwargs)


class TestHashFamily:
    def test_same_seed_same_functions(self):
        fam1 = HashFamily(bins=64, seed=9).take(3)
        fam2 = HashFamily(bins=64, seed=9).take(3)
        assert fam1 == fam2

    def test_different_seed_different_functions(self):
        fam1 = HashFamily(bins=64, seed=1).take(3)
        fam2 = HashFamily(bins=64, seed=2).take(3)
        assert fam1 != fam2

    def test_functions_within_family_differ(self):
        functions = HashFamily(bins=64, seed=5).take(4)
        params = {(fn.a, fn.b) for fn in functions}
        assert len(params) == 4

    def test_clone_independence(self):
        # Two clones should disagree on bin placement for most values.
        f1, f2 = HashFamily(bins=1024, seed=3).take(2)
        values = np.arange(10_000, dtype=np.uint64)
        agree = (f1.hash_array(values) == f2.hash_array(values)).mean()
        assert agree < 0.01  # expected ~1/1024

    def test_issued_tracks_functions(self):
        family = HashFamily(bins=8, seed=0)
        drawn = family.take(2)
        assert list(family.issued) == drawn

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            HashFamily(bins=0)
        with pytest.raises(ConfigError):
            HashFamily(bins=4).take(0)
