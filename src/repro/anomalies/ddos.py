"""Distributed denial-of-service injector.

A DDoS (paper Table IV: 5 occurrences, ~546 k flows on average — the
largest class) is modelled as a large number of distinct sources sending
small TCP flows to a single victim address and port.  The dominant
item-set signature is ``{dstIP: victim}`` with strong
``{dstIP, dstPort}`` 2-item-sets.
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyInjector, uniform_times
from repro.errors import ConfigError
from repro.flows.record import PROTO_TCP
from repro.flows.table import FlowTable


class DDoSInjector(AnomalyInjector):
    """Many spoofed/botnet sources flooding one victim."""

    kind = "ddos"

    def __init__(
        self,
        victim_ip: int,
        target_port: int = 80,
        flows: int = 50_000,
        sources: int = 4_000,
        source_space_start: int = 0x0C000000,
        source_space_size: int = 1 << 24,
    ):
        if flows < 1:
            raise ConfigError(f"flows must be >= 1: {flows}")
        if sources < 2:
            raise ConfigError(f"a DDoS needs at least 2 sources: {sources}")
        if not 0 <= target_port <= 65535:
            raise ConfigError(f"bad target port: {target_port}")
        self.victim_ip = victim_ip
        self.target_port = target_port
        self.flows = flows
        self.sources = sources
        self.source_space_start = source_space_start
        self.source_space_size = source_space_size

    def generate(
        self,
        rng: np.random.Generator,
        start: float,
        duration: float,
        label: int,
    ) -> FlowTable:
        self._check_generate_args(start, duration, label)
        n = self.flows
        # Botnet membership: a fixed set of source addresses, reused with
        # Zipf-ish weights (some bots fire faster than others).
        pool = self.source_space_start + rng.choice(
            self.source_space_size, size=self.sources, replace=False
        ).astype(np.uint64)
        weights = (np.arange(1, self.sources + 1, dtype=np.float64)) ** -0.7
        weights /= weights.sum()
        src = pool[np.searchsorted(np.cumsum(weights), rng.random(n), side="right")]
        packets = rng.integers(1, 4, size=n).astype(np.uint64)
        bytes_ = packets * rng.integers(40, 64, size=n).astype(np.uint64)
        return FlowTable.from_arrays(
            src_ip=src,
            dst_ip=np.full(n, self.victim_ip, dtype=np.uint64),
            src_port=rng.integers(1024, 65536, size=n, dtype=np.uint64),
            dst_port=np.full(n, self.target_port, dtype=np.uint64),
            protocol=np.full(n, PROTO_TCP, dtype=np.uint64),
            packets=packets,
            bytes_=bytes_,
            start=uniform_times(rng, n, start, duration),
            label=np.full(n, label, dtype=np.int64),
        )

    def describe(self) -> str:
        return (
            f"DDoS: {self.sources} sources x {self.flows} flows "
            f"-> victim dstPort {self.target_port}"
        )

    def signature(self) -> dict[str, int]:
        return {"dst_ip": self.victim_ip, "dst_port": self.target_port}
