"""Anomaly injection framework.

The paper evaluates on 36 manually labelled events of seven classes
(Table IV).  Here each class is an :class:`AnomalyInjector` that
synthesizes the event's flows; the scheduler stamps them with a
ground-truth event id so that true/false-positive accounting downstream
is exact by construction rather than inferred by an analyst.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.flows.table import FlowTable

#: Canonical anomaly class names, matching Table IV of the paper.
ANOMALY_CLASSES = (
    "flooding",
    "backscatter",
    "network_experiment",
    "ddos",
    "scanning",
    "spam",
    "unknown",
)


@dataclass(frozen=True, slots=True)
class InjectedEvent:
    """Ground-truth record of one injected anomalous event.

    Attributes:
        event_id: the label stamped on every flow of the event.
        kind: anomaly class (one of :data:`ANOMALY_CLASSES` or ``worm``).
        start / end: time span of the event in trace seconds.
        flow_count: number of flows the event contributed.
        description: human-readable one-liner for reports.
        signature: feature hints ({"dst_port": 7000, ...}) used by
            reports; metrics rely on flow labels, not on this.
    """

    event_id: int
    kind: str
    start: float
    end: float
    flow_count: int
    description: str = ""
    signature: dict[str, int] = field(default_factory=dict)

    def overlaps(self, t0: float, t1: float) -> bool:
        """True when the event is active anywhere inside ``[t0, t1)``."""
        return self.start < t1 and self.end > t0


class AnomalyInjector(abc.ABC):
    """Base class for event-flow generators.

    Concrete injectors are configured at construction time; calling
    :meth:`generate` produces the labelled event flows for a specific
    occurrence of the event.
    """

    #: Anomaly class name; subclasses must override.
    kind: str = "unknown"

    @abc.abstractmethod
    def generate(
        self,
        rng: np.random.Generator,
        start: float,
        duration: float,
        label: int,
    ) -> FlowTable:
        """Synthesize the event's flows.

        Args:
            rng: source of randomness (injected for reproducibility).
            start: event start time in trace seconds.
            duration: event length in seconds.
            label: ground-truth event id to stamp on every flow.

        Returns:
            A :class:`FlowTable` whose ``label`` column equals ``label``.
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line description for ground-truth records."""

    def signature(self) -> dict[str, int]:
        """Characteristic feature values (overridable; default empty)."""
        return {}

    def _check_generate_args(
        self, start: float, duration: float, label: int
    ) -> None:
        if duration <= 0:
            raise ConfigError(f"event duration must be positive: {duration}")
        if label < 0:
            raise ConfigError(f"event label must be >= 0: {label}")
        if start < 0:
            raise ConfigError(f"event start must be >= 0: {start}")


def uniform_times(
    rng: np.random.Generator, n: int, start: float, duration: float
) -> np.ndarray:
    """Start times for ``n`` event flows, uniform over the event span."""
    return rng.uniform(start, start + duration, size=n)


def stamp_label(table: FlowTable, label: int) -> FlowTable:
    """Return a copy of ``table`` with every row's label set."""
    import numpy as _np

    cols = {name: table.column(name) for name in
            ("src_ip", "dst_ip", "src_port", "dst_port",
             "protocol", "packets", "bytes", "start")}
    cols["label"] = _np.full(len(table), label, dtype=_np.int64)
    return FlowTable(cols)
