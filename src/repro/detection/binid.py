"""Iterative identification of anomalous histogram bins (paper Fig. 5).

When a clone alarms in interval ``t``, the detector must find which bins
caused the KL spike.  The paper's algorithm *simulates the removal of
suspicious flows*: in each round it takes the bin with the largest
absolute count difference between the current and reference histograms
and resets its count to the reference value; it stops as soon as the
"cleaned" histogram no longer raises an alert.  The per-round KL values
converge to the previous interval's level, dropping sharply after the
first round for concentrated anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detection.kl import DEFAULT_PSEUDOCOUNT, kl_from_counts
from repro.detection.threshold import AlarmThreshold
from repro.errors import DetectionError


@dataclass(frozen=True, slots=True)
class BinIdentification:
    """Result of the iterative cleaning simulation.

    Attributes:
        bins: anomalous bin indices in removal order (most disruptive
            first).
        kl_trace: KL distance after each round; ``kl_trace[0]`` is the
            un-cleaned distance, ``kl_trace[i]`` the distance after
            resetting ``bins[:i]``.  This is exactly the Fig. 5 series.
        converged: False when every bin was reset and the alarm still
            stood (pathological; should not happen with real data).
    """

    bins: tuple[int, ...]
    kl_trace: tuple[float, ...] = field(default=())
    converged: bool = True

    @property
    def rounds(self) -> int:
        return len(self.bins)


def identify_anomalous_bins(
    current: np.ndarray,
    reference: np.ndarray,
    threshold: AlarmThreshold,
    previous_kl: float,
    pseudocount: float = DEFAULT_PSEUDOCOUNT,
    max_rounds: int | None = None,
) -> BinIdentification:
    """Run the iterative cleaning simulation.

    Args:
        current: bin counts of the alarming interval.
        reference: bin counts of the previous (reference) interval.
        threshold: the alarm rule that fired.
        previous_kl: KL distance observed at interval ``t-1``; the alert
            condition is ``KL(cleaned, reference) - previous_kl >
            threshold.value``, mirroring the first-difference rule.
        pseudocount: smoothing used for the KL computation.
        max_rounds: optional cap on rounds (defaults to the bin count).

    Returns:
        A :class:`BinIdentification` with removal order and KL trace.
    """
    cur = np.asarray(current, dtype=np.float64).copy()
    ref = np.asarray(reference, dtype=np.float64)
    if cur.shape != ref.shape or cur.ndim != 1:
        raise DetectionError(
            f"histogram shape mismatch: {cur.shape} vs {ref.shape}"
        )
    bins_total = len(cur)
    if max_rounds is None:
        max_rounds = bins_total
    kl = kl_from_counts(cur, ref, pseudocount)
    trace: list[float] = [kl]
    chosen: list[int] = []
    while kl - previous_kl > threshold.value and len(chosen) < max_rounds:
        diffs = np.abs(cur - ref)
        # Never re-pick an already-cleaned bin (its diff is 0 anyway, but
        # guard against all-zero diffs with a pending alarm).
        bin_idx = int(np.argmax(diffs))
        if diffs[bin_idx] == 0.0:
            return BinIdentification(
                bins=tuple(chosen), kl_trace=tuple(trace), converged=False
            )
        cur[bin_idx] = ref[bin_idx]
        chosen.append(bin_idx)
        kl = kl_from_counts(cur, ref, pseudocount)
        trace.append(kl)
    converged = kl - previous_kl <= threshold.value
    return BinIdentification(
        bins=tuple(chosen), kl_trace=tuple(trace), converged=converged
    )
