"""Universal hash functions for histogram cloning and sketches.

Histogram cloning (paper Section II-D) requires *independent* hash
functions that randomly place each feature value into one of ``m`` bins.
We use the classic Carter–Wegman multiply-shift family

    h_{a,b}(x) = ((a * x + b) mod p) mod m

with ``p`` a Mersenne prime (2^61 - 1) larger than any 32-bit feature
value, ``a`` drawn uniformly from [1, p) and ``b`` from [0, p).  The
family is 2-universal, which is what the collision analysis of the paper
(equation (3), q = B/m) assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Mersenne prime 2^61 - 1; comfortably exceeds 32-bit feature values.
MERSENNE_PRIME = (1 << 61) - 1


@dataclass(frozen=True, slots=True)
class UniversalHash:
    """One member of the multiply-shift universal family.

    ``a`` and ``b`` fully determine the function, so instances can be
    persisted and compared; equality means identical binning.
    """

    a: int
    b: int
    bins: int

    def __post_init__(self) -> None:
        if not 1 <= self.a < MERSENNE_PRIME:
            raise ConfigError(f"hash multiplier out of range: {self.a}")
        if not 0 <= self.b < MERSENNE_PRIME:
            raise ConfigError(f"hash offset out of range: {self.b}")
        if self.bins < 1:
            raise ConfigError(f"bin count must be >= 1: {self.bins}")

    def __call__(self, value: int) -> int:
        """Hash a single non-negative integer value to a bin index."""
        return int(((self.a * int(value) + self.b) % MERSENNE_PRIME) % self.bins)

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized hashing of an integer array to bin indices.

        Computes ``(a*x + b) mod p`` without 64-bit overflow by splitting
        both operands into 31/30-bit halves and exploiting the Mersenne
        identity ``2^61 === 1 (mod p)``:

            a*x = aH*xH*2^62 + (aH*xL + aL*xH)*2^31 + aL*xL

        where ``2^62 === 2 (mod p)`` and the middle term's shift by 31 is
        folded with the same identity.  Every intermediate stays below
        2^63, so plain uint64 arithmetic is exact; the scalar path
        (``__call__``) uses arbitrary-precision Python ints and the test
        suite asserts both agree.
        """
        p = np.uint64(MERSENNE_PRIME)
        x = np.asarray(values, dtype=np.uint64) % p
        a_hi = np.uint64(self.a >> 31)          # < 2^30
        a_lo = np.uint64(self.a & ((1 << 31) - 1))  # < 2^31
        x_hi = x >> np.uint64(31)               # < 2^30
        x_lo = x & np.uint64((1 << 31) - 1)     # < 2^31
        # High term: aH*xH*2^62 === 2*aH*xH (mod p); aH*xH < 2^60.
        t1 = (np.uint64(2) * (a_hi * x_hi)) % p
        # Middle term: (aH*xL + aL*xH) < 2^62, reduce then shift by 31
        # via y*2^31 === (y mod 2^30)*2^31 + (y >> 30) (mod p).
        t2 = (a_hi * x_lo + a_lo * x_hi) % p
        t2 = ((t2 & np.uint64((1 << 30) - 1)) << np.uint64(31)) + (
            t2 >> np.uint64(30)
        )
        # Low term: aL*xL < 2^62, one reduction suffices.
        t3 = (a_lo * x_lo) % p
        hashed = (t1 + (t2 % p) + t3 + np.uint64(self.b)) % p
        return (hashed % np.uint64(self.bins)).astype(np.int64)


class HashFamily:
    """Deterministic generator of independent :class:`UniversalHash`
    functions.

    A family is seeded; clone ``i`` of every run with the same seed gets
    the same hash function, which makes detection experiments exactly
    reproducible.
    """

    def __init__(self, bins: int, seed: int = 0):
        if bins < 1:
            raise ConfigError(f"bin count must be >= 1: {bins}")
        self._bins = bins
        self._rng = np.random.default_rng(seed)
        self._issued: list[UniversalHash] = []

    @property
    def bins(self) -> int:
        return self._bins

    def fresh(self) -> UniversalHash:
        """Draw the next independent hash function."""
        a = int(self._rng.integers(1, MERSENNE_PRIME))
        b = int(self._rng.integers(0, MERSENNE_PRIME))
        fn = UniversalHash(a=a, b=b, bins=self._bins)
        self._issued.append(fn)
        return fn

    def take(self, count: int) -> list[UniversalHash]:
        """Draw ``count`` independent hash functions."""
        if count < 1:
            raise ConfigError(f"must request at least one hash: {count}")
        return [self.fresh() for _ in range(count)]

    @property
    def issued(self) -> tuple[UniversalHash, ...]:
        """All functions issued so far, in order."""
        return tuple(self._issued)
