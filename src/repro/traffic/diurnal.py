"""Diurnal and weekly rate modulation for the synthetic backbone.

Backbone traffic volume swings with the time of day (roughly sinusoidal,
peak in the afternoon, trough before dawn) and dips on weekends.  The
detectors of the paper are explicitly robust to *volume* changes that do
not alter feature distributions (Section II-C), so modelling this
modulation is an important negative control: the KL detector must stay
quiet through the daily swing.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def diurnal_factor(
    t: float,
    amplitude: float = 0.35,
    peak_hour: float = 15.0,
    weekend_dip: float = 0.25,
) -> float:
    """Multiplicative rate factor at absolute time ``t`` (seconds).

    Args:
        t: time in seconds since the trace origin (origin = Monday 00:00).
        amplitude: half peak-to-trough swing of the daily sinusoid
            (0.35 means the rate varies between 0.65x and 1.35x).
        peak_hour: hour of day (0-24) at which traffic peaks.
        weekend_dip: fractional rate reduction applied on Saturday and
            Sunday.

    Returns:
        A strictly positive factor to multiply the base flow rate with.
    """
    if not 0 <= amplitude < 1:
        raise ConfigError(f"amplitude must be in [0, 1): {amplitude}")
    if not 0 <= weekend_dip < 1:
        raise ConfigError(f"weekend_dip must be in [0, 1): {weekend_dip}")
    if not 0 <= peak_hour < 24:
        raise ConfigError(f"peak_hour must be in [0, 24): {peak_hour}")
    hour_of_day = (t % SECONDS_PER_DAY) / 3600.0
    phase = 2.0 * math.pi * (hour_of_day - peak_hour) / 24.0
    factor = 1.0 + amplitude * math.cos(phase)
    day_index = int((t % SECONDS_PER_WEEK) // SECONDS_PER_DAY)
    if day_index >= 5:  # Saturday (5) and Sunday (6)
        factor *= 1.0 - weekend_dip
    return factor


def interval_flow_count(
    base_flows: int,
    interval_start: float,
    interval_seconds: float,
    amplitude: float = 0.35,
    peak_hour: float = 15.0,
    weekend_dip: float = 0.25,
) -> float:
    """Expected baseline flow count for an interval, evaluated at the
    interval midpoint (adequate for intervals of a few minutes)."""
    midpoint = interval_start + interval_seconds / 2.0
    return base_flows * diurnal_factor(
        midpoint, amplitude=amplitude, peak_hour=peak_hour, weekend_dip=weekend_dip
    )
