"""Unit tests for prefix-aggregated (multi-level) mining."""

import numpy as np
import pytest

from repro.detection.features import Feature
from repro.errors import MiningError
from repro.flows.record import ip_to_int
from repro.flows.table import FlowTable
from repro.mining.multilevel import (
    aggregate_prefixes,
    mine_multilevel,
    prefix_mask,
)


class TestPrefixMask:
    def test_known_masks(self):
        assert prefix_mask(32) == 0xFFFFFFFF
        assert prefix_mask(24) == 0xFFFFFF00
        assert prefix_mask(16) == 0xFFFF0000
        assert prefix_mask(8) == 0xFF000000
        assert prefix_mask(0) == 0

    def test_validation(self):
        with pytest.raises(MiningError):
            prefix_mask(33)
        with pytest.raises(MiningError):
            prefix_mask(-1)


def _scattered_scan_flows():
    """A scan hitting one /24 but a different host per flow: invisible
    at host level, a heavy hitter at /24 level."""
    rng = np.random.default_rng(9)
    n = 300
    block = ip_to_int("130.59.7.0")
    dst = block + np.arange(n) % 250
    return FlowTable.from_arrays(
        src_ip=rng.integers(0, 2**32, n),
        dst_ip=dst,
        src_port=rng.integers(1024, 65536, n),
        dst_port=np.full(n, 445),
        protocol=[6] * n,
        packets=[1] * n,
        bytes_=[48] * n,
    )


class TestAggregatePrefixes:
    def test_identity_at_32(self):
        flows = _scattered_scan_flows()
        assert aggregate_prefixes(flows, 32, 32) == flows

    def test_masks_addresses(self):
        flows = _scattered_scan_flows()
        view = aggregate_prefixes(flows, 24, 24)
        assert (view.dst_ip == ip_to_int("130.59.7.0")).all()
        # Non-address columns untouched.
        assert np.array_equal(view.dst_port, flows.dst_port)
        assert np.array_equal(view.label, flows.label)

    def test_src_and_dst_independent(self):
        flows = _scattered_scan_flows()
        view = aggregate_prefixes(flows, 16, 32)
        assert np.array_equal(view.dst_ip, flows.dst_ip)
        assert (view.src_ip & np.uint64(0xFFFF)).max() == 0


class TestMineMultilevel:
    def test_range_anomaly_surfaces_at_24(self):
        flows = _scattered_scan_flows()
        merged, per_level = mine_multilevel(
            flows, min_support=250, levels=((32, 32), (24, 24))
        )
        # Host level: no single dst_ip reaches support 250.
        host = per_level[(32, 32)]
        host_dst_items = [
            s for s in host.itemsets if Feature.DST_IP in s.as_dict()
        ]
        assert host_dst_items == []
        # /24 level: the whole block is a frequent item.
        block_entries = [
            e for e in merged
            if e.itemset.as_dict().get(Feature.DST_IP)
            == ip_to_int("130.59.7.0")
        ]
        assert block_entries
        assert block_entries[0].src_prefix in (24, 32)
        assert block_entries[0].dst_prefix == 24

    def test_merged_sorted_by_support(self):
        flows = _scattered_scan_flows()
        merged, _ = mine_multilevel(flows, min_support=100)
        supports = [e.itemset.support for e in merged]
        assert supports == sorted(supports, reverse=True)

    def test_level_tags(self):
        flows = _scattered_scan_flows()
        merged, _ = mine_multilevel(
            flows, min_support=250, levels=((24, 24),)
        )
        assert all(e.level == "/24-/24" for e in merged)

    def test_address_free_itemsets_not_duplicated(self):
        flows = _scattered_scan_flows()
        merged, per_level = mine_multilevel(
            flows, min_support=250, levels=((32, 32), (24, 24), (16, 16))
        )
        # {dstPort=445, ...} appears once in the merged report even
        # though all three levels mined it.
        portsets = [
            e for e in merged
            if e.itemset.as_dict().get(Feature.DST_PORT) == 445
            and Feature.DST_IP not in e.itemset.as_dict()
            and Feature.SRC_IP not in e.itemset.as_dict()
        ]
        assert len(portsets) <= 1

    def test_needs_levels(self):
        with pytest.raises(MiningError):
            mine_multilevel(_scattered_scan_flows(), 10, levels=())
