"""Table IV: identified anomalies in two weeks of NetFlow data.

Paper: 36 events of seven classes inside 31 anomalous 15-minute
intervals, with per-class occurrence counts and average flow counts
(DDoS by far the largest).  Our trace is constructed with the same event
mix, so the census must reproduce it exactly; the interesting measured
quantity is the *detection* outcome per class: the histogram detectors
alarm on every one of the 31 intervals at the default threshold.
"""

from collections import defaultdict

from repro.traffic.scenarios import TABLE4_OCCURRENCES


def _census(trace):
    by_class: dict[str, list[int]] = defaultdict(list)
    for event in trace.events:
        by_class[event.kind].append(event.flow_count)
    return by_class


def test_table4_census_and_detection(benchmark, two_week, report):
    trace = two_week["trace"]
    run = two_week["run"]

    by_class = benchmark(_census, trace)

    gt_intervals = trace.anomalous_intervals()
    alarms = set(run.alarm_intervals())
    detected = gt_intervals & alarms
    extra = alarms - gt_intervals

    report(
        "",
        "Table IV - anomaly census over two weeks "
        f"(1344 intervals, event scale 0.02)",
        f"  anomalous intervals: {len(gt_intervals)} (paper: 31); "
        f"events: {len(trace.events)} (paper: 36)",
    )
    for kind, counts in sorted(by_class.items()):
        avg = sum(counts) / len(counts)
        report(
            f"  {kind:20s} occurrences={len(counts):2d} "
            f"avg flows={avg:9.0f} (scaled 1:50 from paper)"
        )
    report(
        f"  detection at default threshold: {len(detected)}/"
        f"{len(gt_intervals)} anomalous intervals alarmed, "
        f"{len(extra)} extra alarms"
    )

    # Census is exact by construction.
    assert len(gt_intervals) == 31
    assert len(trace.events) == 36
    for kind, expected in TABLE4_OCCURRENCES.items():
        assert len(by_class[kind]) == expected
    # DDoS is the largest class by average flows, as in the paper.
    averages = {k: sum(v) / len(v) for k, v in by_class.items()}
    assert max(averages, key=averages.get) == "ddos"
    # The paper's extraction evaluation presumes the detector finds the
    # anomalous intervals; at this scale all 31 must alarm.
    assert len(detected) == 31
