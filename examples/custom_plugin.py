#!/usr/bin/env python3
"""Extending repro: register a custom miner and run it end to end.

The pipeline's extension points - miners, detector feature sets, trace
readers, report sinks - all resolve through `repro.registry`, so a
plugin never edits repro internals.  This example registers a toy
"two-shard" miner (a miniature of the SON scheme: mine each half of the
transactions at a scaled threshold, union the candidates, verify exact
supports in one counting pass), runs it on the Table II scenario, and
shows its report is identical to the built-in apriori - the counting
pass makes the partitioned answer provably exact.

The same name then drives the whole pipeline: `ExtractionConfig(miner=
"two-shard")`, `repro.api.extract(..., miner="two-shard")`, and
`repro-extract extract --miner two-shard` on the CLI.

Run:
    python examples/custom_plugin.py
"""

import repro.api as api
from repro.mining import TransactionSet, apriori
from repro.mining.partition import (
    count_candidates,
    local_min_support,
    merge_candidates,
    merge_results,
    partition_transactions,
)
from repro.registry import miners
from repro.traffic import table2_interval


@miners.register("two-shard")
def two_shard_miner(transactions, min_support, maximal_only=True,
                    **kwargs):
    """Any callable with this signature can register as a miner."""
    shards = partition_transactions(transactions, 2)
    candidates = merge_candidates([
        list(
            apriori(
                shard,
                local_min_support(min_support, len(shard),
                                  len(transactions)),
                maximal_only=False,
            ).all_frequent
        )
        for shard in shards
    ])
    counts = [count_candidates(shard, candidates) for shard in shards]
    return merge_results(
        counts,
        n_transactions=len(transactions),
        min_support=min_support,
        maximal_only=maximal_only,
        algorithm="two-shard",
    )


def main() -> None:
    scenario = table2_interval(scale=0.05, seed=1)
    transactions = TransactionSet.from_flows(scenario.flows)

    print(f"registered miners: {', '.join(sorted(miners))}")
    print(f"Table II scenario at 5% scale: {len(scenario.flows)} flows, "
          f"min support {scenario.min_support}")

    reference = apriori(transactions, scenario.min_support)
    plugin = miners["two-shard"](transactions, scenario.min_support)

    print("\nplugin report (two-shard):")
    for line in plugin.summary_lines():
        print(f"  {line}")

    match = plugin.itemsets == reference.itemsets
    print(f"\nidentical to the built-in apriori report: {match}")
    if not match:
        raise SystemExit("plugin diverged from apriori")

    # The registered name is a first-class miner everywhere else too.
    config = api.ExtractionConfig(miner="two-shard")
    print(f"selectable in ExtractionConfig too: miner={config.miner!r}")


if __name__ == "__main__":
    main()
