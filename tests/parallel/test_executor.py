"""Unit tests for the pluggable executor layer."""

import pytest

from repro.errors import ConfigError
from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    resolve_jobs,
)


def _square(x):
    return x * x


def _fail(x):
    raise ValueError(f"boom {x}")


class TestResolveJobs:
    def test_defaults_to_cpu_count(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_value(self):
        assert resolve_jobs(5) == 5

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError, match="jobs"):
            resolve_jobs(0)


class TestGetExecutor:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_builds_every_backend(self, backend):
        with get_executor(backend, jobs=2) as executor:
            assert executor.backend == backend
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            get_executor("gpu")

    def test_serial_ignores_jobs(self):
        assert get_executor("serial", jobs=8).jobs == 1


class TestSemantics:
    @pytest.mark.parametrize(
        "executor_cls", [SerialExecutor, ThreadExecutor, ProcessExecutor]
    )
    def test_map_preserves_order(self, executor_cls):
        with executor_cls() as executor:
            assert executor.map(_square, list(range(20))) == [
                i * i for i in range(20)
            ]

    @pytest.mark.parametrize(
        "executor_cls", [SerialExecutor, ThreadExecutor, ProcessExecutor]
    )
    def test_map_propagates_exceptions(self, executor_cls):
        with executor_cls() as executor:
            with pytest.raises(ValueError, match="boom"):
                executor.map(_fail, [1])

    def test_map_on_empty_input(self):
        assert SerialExecutor().map(_square, []) == []

    def test_closed_pool_rejected(self):
        executor = ThreadExecutor(jobs=2)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(ConfigError, match="closed"):
            executor.map(_square, [1])

    def test_dropped_executor_shuts_pool_down(self):
        import gc

        executor = ThreadExecutor(jobs=2)
        pool = executor._pool
        del executor
        gc.collect()
        assert pool._shutdown
