"""SON partitioned miner: equivalence with the serial miners.

The acceptance bar of the subsystem: identical item-sets and supports to
``apriori`` on every fixture, for every backend and partition count.
"""

import pytest

from repro.errors import MiningError
from repro.mining import MINERS
from repro.mining.apriori import apriori
from repro.mining.transactions import TransactionSet
from repro.parallel.executor import EXECUTOR_BACKENDS, get_executor
from repro.parallel.son import son


def _itemset_pairs(result):
    return [(s.items, s.support) for s in result.itemsets]


@pytest.fixture(scope="module")
def table2_transactions(table2_small):
    return (
        TransactionSet.from_flows(table2_small.flows),
        table2_small.min_support,
    )


class TestEquivalence:
    @pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
    def test_matches_apriori_on_table2(self, table2_transactions, backend):
        transactions, min_support = table2_transactions
        reference = apriori(transactions, min_support)
        with get_executor(backend, jobs=2) as executor:
            result = son(
                transactions, min_support, partitions=4, executor=executor
            )
        assert result.all_frequent == reference.all_frequent
        assert _itemset_pairs(result) == _itemset_pairs(reference)

    @pytest.mark.parametrize("partitions", [1, 2, 3, 5, 100])
    def test_partition_count_is_invisible(self, tiny_flows, partitions):
        transactions = TransactionSet.from_flows(tiny_flows)
        reference = apriori(transactions, 2)
        result = son(transactions, 2, partitions=partitions)
        assert result.all_frequent == reference.all_frequent
        assert _itemset_pairs(result) == _itemset_pairs(reference)

    def test_level_stats_match(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        reference = apriori(transactions, 2)
        result = son(transactions, 2, partitions=3)
        assert result.level_stats == reference.level_stats

    @pytest.mark.parametrize("local_miner", ["apriori", "eclat", "fpgrowth"])
    def test_any_local_miner(self, tiny_flows, local_miner):
        transactions = TransactionSet.from_flows(tiny_flows)
        reference = apriori(transactions, 2)
        result = son(
            transactions, 2, partitions=2, local_miner=local_miner
        )
        assert result.all_frequent == reference.all_frequent

    def test_non_maximal_output(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        reference = apriori(transactions, 2, maximal_only=False)
        result = son(transactions, 2, maximal_only=False, partitions=2)
        assert _itemset_pairs(result) == _itemset_pairs(reference)


class TestEdges:
    def test_empty_transactions(self):
        import numpy as np

        empty = TransactionSet(np.empty((0, 7), dtype=np.int64))
        result = son(empty, 5, partitions=3)
        assert result.itemsets == []
        assert result.all_frequent == {}
        assert result.n_transactions == 0

    def test_support_above_input_size(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        result = son(transactions, len(transactions) + 1, partitions=2)
        assert result.itemsets == []

    def test_algorithm_tag(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        assert son(transactions, 2).algorithm == "son"

    def test_invalid_support_rejected(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        with pytest.raises(MiningError, match="min_support"):
            son(transactions, 0)

    def test_unknown_local_miner_rejected(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        with pytest.raises(MiningError, match="local miner"):
            son(transactions, 2, local_miner="bogus")

    def test_registered_in_miners(self, tiny_flows):
        transactions = TransactionSet.from_flows(tiny_flows)
        reference = apriori(transactions, 2)
        result = MINERS["son"](transactions, 2)
        assert result.all_frequent == reference.all_frequent
