"""Property-based tests for the KL distance machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.detection.kl import first_difference, kl_distance, kl_from_counts

counts_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=64),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


def _paired_counts():
    return st.integers(min_value=2, max_value=64).flatmap(
        lambda n: st.tuples(
            hnp.arrays(
                dtype=np.float64,
                shape=n,
                elements=st.floats(min_value=0.0, max_value=1e6),
            ),
            hnp.arrays(
                dtype=np.float64,
                shape=n,
                elements=st.floats(min_value=0.0, max_value=1e6),
            ),
        )
    )


@settings(max_examples=100, deadline=None)
@given(pair=_paired_counts())
def test_kl_non_negative(pair):
    current, reference = pair
    distance = kl_from_counts(current, reference, pseudocount=0.5)
    assert distance >= -1e-9  # Gibbs inequality (numerical slack)


@settings(max_examples=100, deadline=None)
@given(counts=counts_arrays)
def test_kl_self_distance_zero(counts):
    assert kl_from_counts(counts, counts, pseudocount=0.5) == 0.0


@settings(max_examples=100, deadline=None)
@given(counts=counts_arrays, scale=st.floats(min_value=1.1, max_value=100.0))
def test_kl_volume_invariance_without_smoothing(counts, scale):
    # Scaling all counts leaves the distribution unchanged; with zero
    # pseudocount the distance must be exactly 0 (the paper's robustness
    # to volume-only changes).
    distance = kl_from_counts(counts * scale, counts, pseudocount=0.0)
    assert abs(distance) < 1e-9


@settings(max_examples=100, deadline=None)
@given(pair=_paired_counts())
def test_kl_finite_with_smoothing(pair):
    current, reference = pair
    assert np.isfinite(kl_from_counts(current, reference, pseudocount=0.5))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=32),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_kl_asymmetric_in_general(n, seed):
    rng = np.random.default_rng(seed)
    p = rng.dirichlet(np.ones(n))
    q = rng.dirichlet(np.ones(n))
    forward = kl_distance(p, q)
    backward = kl_distance(q, p)
    # Both defined and non-negative; equality only in degenerate cases.
    assert forward >= 0 and backward >= 0


@settings(max_examples=100, deadline=None)
@given(
    series=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=100),
        elements=st.floats(min_value=-1e9, max_value=1e9),
    )
)
def test_first_difference_reconstructs_series(series):
    diffs = first_difference(series)
    assert len(diffs) == len(series)
    assert diffs[0] == 0.0
    reconstructed = series[0] + np.cumsum(diffs)
    assert np.allclose(reconstructed, series, rtol=1e-9, atol=1e-6)
