"""Push-based execution sessions: the single orchestration path.

Every way of driving the paper's Fig. 3 pipeline - batch
:meth:`~repro.core.pipeline.AnomalyExtractor.run_trace`, streaming
:meth:`~repro.core.pipeline.AnomalyExtractor.run_stream`, the
incremental :class:`~repro.streaming.extractor.StreamingExtractor`, and
the multi-link :class:`~repro.fleet.manager.FleetManager` - funnels
through one :class:`ExtractionSession`.  The session owns the
per-interval orchestration that used to be duplicated between
``core/pipeline.py`` and ``streaming/extractor.py``: window the flows,
run the detector bank, prefilter + mine on alarm, build the
serializable report, push it to the sink, and note pipeline progress so
incident lifecycle state ages correctly.

Two modes share that code path:

* ``mode="batch"`` - :meth:`ExtractionSession.feed` accumulates chunks;
  :meth:`ExtractionSession.finish` windows the whole trace with
  :func:`~repro.flows.stream.iter_intervals` and processes every
  interval, returning a
  :class:`~repro.core.pipeline.TraceExtraction`.  Byte-identical to the
  pre-session ``run_trace``.
* ``mode="stream"`` - chunks go through an
  :class:`~repro.streaming.assembler.IntervalAssembler`; completed
  intervals are processed as the watermark releases them, results
  return from :meth:`feed` incrementally, and :meth:`finish` drains the
  tail and returns a :class:`StreamExtraction` summary.  Byte-identical
  to the pre-session ``StreamingExtractor``.

Sessions are context managers.  Created via
:meth:`AnomalyExtractor.session` they *borrow* the extractor (closing
the session leaves it open, mirroring
``StreamingExtractor(extractor=...)``); created via
:func:`repro.api.session` they *own* it, and ``close()`` releases the
extractor's worker pool and incident store even when a mid-feed chunk
raised (the ``with`` block guarantees the call, and
:meth:`AnomalyExtractor.close` chains the two releases in
``try``/``finally``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pipeline import (
    AnomalyExtractor,
    ExtractionResult,
    ReportSink,
    TraceExtraction,
    notify_sink_interval,
)
from repro.core.prefilter import PrefilterResult, prefilter
from repro.core.report import ExtractionReport
from repro.detection.manager import DetectionRun
from repro.errors import CheckpointError, ExtractionError
from repro.flows.stream import (
    DEFAULT_INTERVAL_SECONDS,
    IntervalView,
    iter_intervals,
)
from repro.flows.table import FlowTable
from repro.mining import MINERS
from repro.mining.streaming import SlidingWindowMiner
from repro.obs.metrics import MetricsRegistry, time_stage

if TYPE_CHECKING:
    from repro.streaming.assembler import IntervalAssembler

#: The two execution modes a session can run in.
SESSION_MODES = ("batch", "stream")


@dataclass
class StreamExtraction:
    """Everything a finished (or flushed) streaming run produced.

    (Historically defined in :mod:`repro.streaming.extractor`, which
    still re-exports it; the canonical home moved here with the
    session redesign.)
    """

    extractions: list[ExtractionResult] = field(default_factory=list)
    detection: DetectionRun | None = None
    #: Intervals emitted by the assembler (including empty gaps).
    intervals: int = 0
    #: Flows accepted into intervals (late drops excluded).
    flows: int = 0
    #: Flows dropped because their interval had already been emitted.
    late_dropped: int = 0
    #: Sliding-window mode only: windows mined / skipped by the
    #: incremental candidate screen.
    windows_mined: int = 0
    windows_skipped: int = 0
    #: Total extractions produced.  Always populated - with
    #: ``keep_extractions=False`` the ``extractions`` list stays empty
    #: (emitted results are evicted to keep memory flat) and this
    #: counter is the only record of how many there were.
    extraction_count: int = 0
    #: Late-drop split: flows predating interval 0 (misconfigured
    #: origin - no lateness tuning recovers them) vs flows whose
    #: interval had already closed past the lateness allowance (raise
    #: ``max_delay_seconds`` to catch these).  Their sum is
    #: :attr:`late_dropped`.
    late_dropped_pre_origin: int = 0
    late_dropped_closed: int = 0

    @property
    def flagged_intervals(self) -> list[int]:
        return [e.interval for e in self.extractions]


class ExtractionSession:
    """One push-based run of the extraction pipeline.

    Usage::

        with extractor.session(mode="stream", interval_seconds=900.0) as s:
            for chunk in iter_csv("trace.csv"):
                for extraction in s.feed(chunk):
                    print(extraction.render())
            summary = s.finish()

    Args:
        extractor: the :class:`AnomalyExtractor` whose detector bank,
            engine, and store the session drives.
        mode: "batch" (results at :meth:`finish`, whole-trace
            windowing) or "stream" (incremental results from
            :meth:`feed`, watermark windowing).
        interval_seconds: measurement interval length ``L``.
        origin: time of interval 0 (streaming cannot infer it; the
            batch drivers default to 0.0 as ``run_trace`` always has).
        sink: optional report sink (anything with
            ``append(ExtractionReport)``); defaults to the extractor's
            open incident store, when one is configured.
        keep_reports: retain per-interval detector reports so
            :meth:`result` can attach a
            :class:`~repro.detection.manager.DetectionRun`.  Set False
            for unbounded streams; memory stays flat and
            ``result().detection`` is ``None``.
        owns_extractor: when True, :meth:`close` releases the extractor
            (worker pool + store); when False the extractor is
            borrowed and outlives the session.

    Batch mode intentionally mirrors the historical ``run_trace``
    semantics exactly: every interval is mined on its own (the
    sliding-window knob only applies to streams) and every extraction
    is retained regardless of ``streaming.keep_extractions`` (the
    caller holds the whole trace in memory anyway).
    """

    def __init__(
        self,
        extractor: AnomalyExtractor,
        mode: str = "stream",
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        origin: float = 0.0,
        sink: ReportSink | None = None,
        keep_reports: bool = True,
        owns_extractor: bool = False,
    ):
        if mode not in SESSION_MODES:
            raise ExtractionError(
                f"unknown session mode {mode!r}; "
                f"choose from {SESSION_MODES}"
            )
        self.mode = mode
        self._extractor = extractor
        self._owns_extractor = owns_extractor
        self.config = extractor.config
        self.interval_seconds = interval_seconds
        self.origin = origin
        self._tracer = extractor.tracer
        # The run's root span: parents under the ambient span when one
        # is active (the fleet's root), else starts a new trace.  Ended
        # at finish()/close(), re-activated around every feed so the
        # per-interval trees nest under it.
        self._span = self._tracer.span(
            "session.run",
            mode=mode,
            pipeline=extractor.instruments.pipeline,
        )
        self._sink = sink if sink is not None else extractor.store
        # With observability on and a telemetry path configured, tee an
        # owned MetricsSink next to the report sink: one snapshot per
        # processed interval lands in the JSONL trail.
        self._metrics_sink = None
        if self.config.obs_enabled and self.config.obs.jsonl_path:
            from repro.obs.sink import MetricsSink
            from repro.sinks import TeeSink

            self._metrics_sink = MetricsSink(
                self.config.obs.jsonl_path, extractor.metrics
            )
            self._sink = (
                TeeSink(self._sink, self._metrics_sink)
                if self._sink is not None
                else self._metrics_sink
            )
        self.keep_reports = keep_reports
        self._closed = False
        self._finished = False
        #: Batch mode: chunks held until :meth:`finish` windows them.
        self._pending: list[FlowTable] = []
        self.assembler: IntervalAssembler | None = None
        self._window_miner: SlidingWindowMiner | None = None
        # Raw per-interval sizes of the current window, mirroring the
        # miner's batches, so window-mode reports can state the true
        # input-flow count.
        self._window_raw_flows: deque[int] = deque(
            maxlen=self.config.window_intervals
        )
        if mode == "stream":
            # Imported lazily: repro.streaming itself imports this
            # module, and a module-level import would close the cycle.
            from repro.streaming.assembler import IntervalAssembler

            self.assembler = IntervalAssembler(
                interval_seconds,
                origin=origin,
                max_delay_seconds=self.config.max_delay_seconds,
                max_pending_intervals=self.config.max_pending_intervals,
                instruments=extractor.instruments,
                tracer=self._tracer,
            )
            if self.config.window_intervals > 1:
                self._window_miner = SlidingWindowMiner(
                    window=self.config.window_intervals,
                    min_support=self.config.min_support,
                    miner=MINERS.get(self.config.miner),
                    maximal_only=self.config.maximal_only,
                )
            self.keep_extractions = self.config.keep_extractions
        else:
            if interval_seconds <= 0:
                raise ExtractionError(
                    f"interval length must be positive: {interval_seconds}"
                )
            self.keep_extractions = True
        self.extraction_count = 0
        #: With ``keep_extractions=False``: the extractions emitted by
        #: the most recent feed/flush call, pinned until the next call
        #: so the caller can render them and ``report_for`` stays valid
        #: for exactly that window (id-keyed state must never outlive
        #: its object).
        self._recent: list[ExtractionResult] = []
        self.extractions: list[ExtractionResult] = []
        #: Per-extraction report state, keyed by object identity (safe:
        #: ``extractions``/``_recent`` pin the objects): the window
        #: fill captured at emission time, replaced by the lazily built
        #: report once :meth:`report_for` constructs it.  Sink-less
        #: runs never pay for reports nothing reads.
        self._report_state: dict[int, int | ExtractionReport] = {}
        self.windows_mined = 0
        self.windows_skipped = 0
        #: Set by :meth:`from_state`: intervals at or below this index
        #: are already durable in the sink (persisted before the crash
        #: the checkpoint recovers from), so their re-processed reports
        #: are recognized as replays and skipped instead of tripping
        #: the store's re-ingest guard.
        self._resume_floor: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def extractor(self) -> AnomalyExtractor:
        return self._extractor

    @property
    def sink(self) -> ReportSink | None:
        """The report sink this session pushes to (may be None)."""
        return self._sink

    @property
    def metrics(self) -> MetricsRegistry:
        """The extractor's metrics registry (no-op when observability
        is off)."""
        return self._extractor.metrics

    @property
    def tracer(self):
        """The extractor's span tracer (no-op when tracing is off)."""
        return self._tracer

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def finished(self) -> bool:
        return self._finished

    def close(self) -> None:
        """Release the session's resources (idempotent).

        An owning session (``api.session``, the fleet) closes its
        extractor, which releases the parallel worker pool and the
        incident store in ``try``/``finally`` - so both are freed even
        when one release raises, and even when the session is being
        torn down because a mid-feed chunk raised.  A borrowing session
        (``extractor.session(...)``) leaves the extractor untouched.
        """
        if self._closed:
            return
        self._closed = True
        self._span.end()
        try:
            if self._metrics_sink is not None:
                self._metrics_sink.close()
        finally:
            if self._owns_extractor:
                self._extractor.close()

    def __enter__(self) -> "ExtractionSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self, verb: str) -> None:
        if self._closed:
            raise ExtractionError(f"cannot {verb}: session is closed")
        if self._finished:
            raise ExtractionError(f"cannot {verb}: session already finished")

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, chunk: FlowTable) -> list[ExtractionResult]:
        """Push one chunk of flows into the pipeline.

        Stream mode returns the extractions of the intervals the chunk
        completed (most chunks complete none or one); batch mode
        accumulates and always returns ``[]`` - results come from
        :meth:`finish`.
        """
        self._check_open("feed")
        if self.mode == "batch":
            if len(chunk):
                self._pending.append(chunk)
            return []
        assert self.assembler is not None
        with self._span.active(), time_stage(
            self._extractor.instruments.stage_binning
        ), self._tracer.span("stage.binning", rows=len(chunk)):
            views = self.assembler.push(chunk)
        return self._process_views(views)

    def flush(self) -> list[ExtractionResult]:
        """Drain what can be drained without ending the session.

        Stream mode emits the trailing intervals kept open by the
        lateness allowance and returns their extractions.  Batch mode
        returns ``[]`` and keeps accumulating: its windowing needs the
        whole trace, and draining mid-run would re-window later feeds
        from the origin, replaying already-observed intervals through
        the detectors - batch results come from :meth:`finish`.
        """
        self._check_open("flush")
        if self.mode == "batch":
            return []
        assert self.assembler is not None
        with self._span.active(), time_stage(
            self._extractor.instruments.stage_binning
        ), self._tracer.span("stage.binning", rows=0):
            views = self.assembler.flush()
        return self._process_views(views)

    def finish(self) -> TraceExtraction | StreamExtraction:
        """Flush, seal the session, and return the run's result.

        Batch sessions return a :class:`TraceExtraction`, stream
        sessions a :class:`StreamExtraction`.  Further :meth:`feed`
        calls raise; :meth:`result` stays readable.
        """
        self._check_open("finish")
        if self.mode == "batch":
            self._drain_batch()
        else:
            self.flush()
        self._finished = True
        self._span.end()
        return self.result()

    def _drain_batch(self) -> list[ExtractionResult]:
        if not self._pending:
            return []
        trace = (
            self._pending[0]
            if len(self._pending) == 1
            else FlowTable.concat(self._pending)
        )
        self._pending = []
        # The generator is consumed one view at a time - each interval's
        # copied FlowTable dies before the next is built, so peak memory
        # holds the trace plus ONE interval, same as the historical
        # run_trace loop.
        return self._process_views(
            self._timed_views(
                iter_intervals(
                    trace,
                    self.interval_seconds,
                    origin=self.origin,
                    include_empty=True,
                )
            )
        )

    def _timed_views(
        self, views: Iterable[IntervalView]
    ) -> Iterable[IntervalView]:
        """Attribute generator-advance time (the batch path's windowing
        work) to the ``binning`` stage, one observation per interval."""
        binning = self._extractor.instruments.stage_binning
        it = iter(views)
        while True:
            with time_stage(binning) as span, self._tracer.span(
                "stage.binning"
            ):
                view = next(it, None)
                if view is None:
                    span.cancel()
                    return
            yield view

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> TraceExtraction | StreamExtraction:
        """Snapshot of the run so far (callable mid-stream)."""
        detection = None
        if self.keep_reports:
            detection = self._extractor.detector_bank.detection_run()
        if self.mode == "batch":
            return TraceExtraction(
                extractions=list(self.extractions), detection=detection
            )
        assert self.assembler is not None
        return StreamExtraction(
            extractions=list(self.extractions),
            detection=detection,
            intervals=self.assembler.intervals_emitted,
            flows=self.assembler.flows_seen,
            late_dropped=self.assembler.late_dropped,
            windows_mined=self.windows_mined,
            windows_skipped=self.windows_skipped,
            extraction_count=self.extraction_count,
            late_dropped_pre_origin=self.assembler.late_dropped_pre_origin,
            late_dropped_closed=self.assembler.late_dropped_closed,
        )

    def report_for(self, extraction: ExtractionResult) -> ExtractionReport:
        """The serializable report of an extraction this session
        produced (the very object the sink received, when a sink is
        attached) - bounds cover the mined window, not just the
        triggering interval.  Built lazily and cached, so runs whose
        reports nothing reads never pay for their construction."""
        key = id(extraction)
        state = self._report_state.get(key)
        if isinstance(state, ExtractionReport):
            return state
        if state is None:
            raise ExtractionError(
                "unknown extraction: report_for only serves results "
                "produced by this session"
            )
        report = ExtractionReport.from_result(
            extraction,
            self.interval_seconds,
            self.origin,
            window_intervals=state,
        )
        self._report_state[key] = report
        return report

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe snapshot of a stream session's resume state.

        Covers everything a resumed process needs to continue the
        stream byte-identically: the assembler's pending bins and
        watermark, the sliding-window miner context, the detector
        bank's learned state, and the session's own progress counters.
        The retained ``extractions`` list and detector reports are NOT
        serialized - they are post-hoc conveniences, and the durable
        record of emitted reports is the sink (incident store).
        """
        if self.mode != "stream":
            raise CheckpointError(
                "only stream sessions checkpoint: batch mode holds the "
                "whole trace and re-runs from scratch"
            )
        self._check_open("checkpoint")
        assert self.assembler is not None
        return {
            "mode": self.mode,
            "assembler": self.assembler.to_state(),
            "window_miner": (
                None
                if self._window_miner is None
                else self._window_miner.to_state()
            ),
            "window_raw_flows": list(self._window_raw_flows),
            "extraction_count": self.extraction_count,
            "windows_mined": self.windows_mined,
            "windows_skipped": self.windows_skipped,
            "detectors": self._extractor.detector_bank.to_state(),
        }

    def from_state(self, state: dict) -> None:
        """Restore :meth:`to_state` data into this freshly built
        session (same config, seed, mode, and windowing as the
        checkpointed one).

        Restoring also arms the resume floor: reports for intervals the
        sink already covers (its ``last_interval`` marker) are treated
        as replays and skipped, so re-feeding the stream from the last
        checkpointed position continues mid-stream instead of tripping
        the store's re-ingest guard.
        """
        self._check_open("restore")
        if self.mode != "stream":
            raise CheckpointError(
                "only stream sessions restore from a checkpoint"
            )
        if not isinstance(state, dict) or state.get("mode") != "stream":
            raise CheckpointError(
                f"session checkpoint state must carry mode='stream', "
                f"got {state.get('mode') if isinstance(state, dict) else state!r}"
            )
        assert self.assembler is not None
        if self.extraction_count or self.assembler.intervals_emitted or (
            self.assembler.flows_seen
        ):
            raise CheckpointError(
                "restore into a fresh session: this one has already "
                "processed data"
            )
        try:
            assembler_state = state["assembler"]
            miner_state = state["window_miner"]
            raw_flows = [int(n) for n in state["window_raw_flows"]]
            counters = {
                key: int(state[key])
                for key in (
                    "extraction_count", "windows_mined", "windows_skipped"
                )
            }
            detector_state = state["detectors"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed session checkpoint state: {exc}"
            ) from exc
        if (miner_state is None) != (self._window_miner is None):
            raise CheckpointError(
                "session checkpoint window mode does not match this "
                "session's window_intervals; restore with the "
                "configuration the checkpoint was written under"
            )
        self.assembler.from_state(assembler_state)
        if self._window_miner is not None:
            self._window_miner.from_state(miner_state)
        self._window_raw_flows.clear()
        self._window_raw_flows.extend(raw_flows)
        self.extraction_count = counters["extraction_count"]
        self.windows_mined = counters["windows_mined"]
        self.windows_skipped = counters["windows_skipped"]
        self._extractor.detector_bank.from_state(detector_state)
        self._resume_floor = self._sink_last_interval()

    def _sink_last_interval(self) -> int | None:
        """The newest interval the durable sink already covers (the
        incident store's marker), or None without one."""
        store = self._extractor.store
        if store is not None:
            return store.last_interval()
        last = getattr(self._sink, "last_interval", None)
        if callable(last):
            marker = last()
            return None if marker is None else int(marker)
        return None

    def _replayed(self, interval: int) -> bool:
        """True when a restored session re-processed an interval whose
        report is already durable (deterministic replay below the
        resume floor) - the append is skipped, not duplicated."""
        return (
            self._resume_floor is not None
            and interval <= self._resume_floor
        )

    # ------------------------------------------------------------------
    # The one orchestration path
    # ------------------------------------------------------------------
    def _process_views(
        self, views: Iterable[IntervalView]
    ) -> list[ExtractionResult]:
        if not self.keep_extractions:
            # The previous batch has been consumed; evict its
            # extractions and their report state so alarm-heavy pipes
            # stay flat (each result pins its prefiltered FlowTable).
            for old in self._recent:
                self._report_state.pop(id(old), None)
            self._recent.clear()
        results = []
        last_index: int | None = None
        with self._span.active():
            for view in views:
                last_index = view.index
                with self._tracer.span(
                    "session.interval",
                    interval=view.index,
                    flows=len(view.flows),
                ) as interval_span:
                    extraction = self._process_interval(view)
                    if extraction is not None:
                        interval_span.set_attribute(
                            "itemsets", len(extraction.mining.itemsets)
                        )
                        results.append(extraction)
                        self.extraction_count += 1
                        if self.keep_extractions:
                            self.extractions.append(extraction)
                        else:
                            self._recent.append(extraction)
                        # In window mode the extraction describes the
                        # whole mined window, so its report bounds must
                        # span it too; the deque length is the window's
                        # current fill, only known now - record it so
                        # report_for can build the report later.
                        window = 1
                        if self._window_miner is not None:
                            window = max(1, len(self._window_raw_flows))
                        self._report_state[id(extraction)] = window
                        if self._sink is not None and not self._replayed(
                            extraction.interval
                        ):
                            # Triage = report construction + sink push.
                            with time_stage(
                                self._extractor.instruments.stage_triage
                            ), self._tracer.span("stage.triage"):
                                self._sink.append(
                                    self.report_for(extraction)
                                )
                    if not self.keep_reports:
                        self._extractor.detector_bank.clear_reports()
        # Clean intervals leave no report but must still age incidents;
        # both windowing sources emit views in interval order, so the
        # last index seen is the furthest the pipeline processed.
        notify_sink_interval(self._sink, last_index)
        return results

    def _process_interval(self, view: IntervalView) -> ExtractionResult | None:
        if self._window_miner is None:
            # One-shot mode shares AnomalyExtractor's own per-interval
            # path, which is what guarantees batch equivalence.
            return self._extractor.process_interval(view.flows)
        ins = self._extractor.instruments
        ins.intervals.inc()
        ins.flows.inc(len(view.flows))
        with time_stage(ins.stage_detection), self._tracer.span(
            "stage.detection", flows=len(view.flows)
        ) as span:
            report = self._extractor.detector_bank.observe(view.flows)
            span.set_attribute("alarm", report.alarm)
        metadata = report.metadata()
        self._window_raw_flows.append(len(view.flows))
        if not report.alarm or metadata.is_empty():
            # Slide an empty batch through so the window keeps tracking
            # the last N *intervals*, not the last N alarms.
            self._window_miner.push(FlowTable.empty())
            return None
        ins.alarmed.inc()
        with time_stage(ins.stage_mining), self._tracer.span(
            "stage.mining", flows=len(view.flows)
        ):
            selected = prefilter(
                view.flows, metadata, self.config.prefilter_mode
            )
            self._window_miner.push(selected.flows)
            mining = self._window_miner.mine_if_candidates()
        if mining is None:
            self.windows_skipped += 1
            return None
        self.windows_mined += 1
        ins.extractions.inc()
        ins.itemsets.inc(len(mining.itemsets))
        # The report must describe what was actually mined - the whole
        # window's suspicious flows - not just this interval's share,
        # or the rendered supports would exceed the stated flow counts.
        window_selected = self._window_miner.window_flows()
        window_prefilter = PrefilterResult(
            flows=window_selected,
            mode=self.config.prefilter_mode,
            input_flows=sum(self._window_raw_flows),
            selected_flows=len(window_selected),
        )
        return ExtractionResult(
            interval=report.interval,
            metadata=metadata,
            prefilter=window_prefilter,
            mining=mining,
            alarmed_features=report.alarmed_features,
        )


def run_session(
    session: ExtractionSession,
    chunks: Iterable[FlowTable],
) -> TraceExtraction | StreamExtraction:
    """Feed a whole chunk iterable through ``session`` and finish it."""
    for chunk in chunks:
        session.feed(chunk)
    return session.finish()


__all__ = [
    "SESSION_MODES",
    "ExtractionSession",
    "StreamExtraction",
    "run_session",
]
