"""Fixture facade with a phantom export."""


def extract():
    return None


__all__ = ["extract", "ghost"]
