"""Unit tests for the SQLite-backed incident store."""

import sqlite3

import pytest

from repro.core.report import ExtractionReport, TriagedItemset
from repro.detection.features import Feature
from repro.errors import IncidentError
from repro.incidents.store import (
    IncidentStore,
    itemset_key,
    open_store,
    parse_itemset_key,
)
from repro.mining.items import FrequentItemset, encode_item

VICTIM = encode_item(Feature.DST_IP, 42)
PORT80 = encode_item(Feature.DST_PORT, 80)
PROTO = encode_item(Feature.PROTOCOL, 6)


def make_report(interval, itemsets=(), alarmed=("dstIP",)):
    """Hand-built report: itemsets is [(items, support, hint), ...]."""
    triaged = tuple(
        TriagedItemset(
            itemset=FrequentItemset(
                items=tuple(sorted(items)), support=support
            ),
            hint=hint,
        )
        for items, support, hint in itemsets
    )
    return ExtractionReport(
        interval=interval,
        start=interval * 900.0,
        end=(interval + 1) * 900.0,
        input_flows=1000,
        selected_flows=400,
        prefilter_mode="union",
        algorithm="apriori",
        min_support=50,
        alarmed_features=tuple(alarmed),
        itemsets=triaged,
    )


REPORT_A = make_report(
    5, [((VICTIM, PORT80), 300, "suspicious"), ((PROTO,), 120, "common-size")]
)
REPORT_B = make_report(6, [((VICTIM, PORT80), 350, "suspicious")])


@pytest.fixture()
def store():
    with IncidentStore(":memory:") as s:
        yield s


class TestKeys:
    def test_round_trip(self):
        key = itemset_key((VICTIM, PORT80))
        assert parse_itemset_key(key) == (VICTIM, PORT80)

    def test_malformed_key_rejected(self):
        with pytest.raises(IncidentError, match="malformed"):
            parse_itemset_key("1,banana")


class TestAppendAndQuery:
    def test_round_trip_objects_and_bytes(self, store):
        store.append(REPORT_A)
        store.append(REPORT_B)
        got = store.reports()
        assert got == [REPORT_A, REPORT_B]
        assert [r.to_json() for r in got] == [
            REPORT_A.to_json(), REPORT_B.to_json()
        ]

    def test_len_counts_reports(self, store):
        assert len(store) == 0
        store.extend([REPORT_A, REPORT_B])
        assert len(store) == 2

    def test_reports_ordered_by_interval(self, store):
        # extend() takes a batch in any order; reads are interval-sorted.
        store.extend([REPORT_B, REPORT_A])
        assert [r.interval for r in store.reports()] == [5, 6]

    def test_append_is_strictly_interval_ordered(self, store):
        """Single appends arm the marker in their own transaction, so
        they must arrive in increasing interval order - unordered
        batches go through extend()."""
        store.append(REPORT_B)  # interval 6
        with pytest.raises(IncidentError, match="duplicate"):
            store.append(REPORT_A)  # interval 5

    def test_since_until_filters(self, store):
        store.extend([make_report(i) for i in range(10)])
        assert [r.interval for r in store.reports(since=7)] == [7, 8, 9]
        assert [r.interval for r in store.reports(until=2)] == [0, 1, 2]
        assert [r.interval for r in store.reports(since=3, until=4)] == [3, 4]

    def test_intervals_listing(self, store):
        store.extend([REPORT_B, REPORT_A])
        assert store.intervals() == [5, 6]

    def test_report_at(self, store):
        store.extend([REPORT_A, REPORT_B])
        assert store.report_at(6) == REPORT_B

    def test_report_at_missing_interval(self, store):
        with pytest.raises(IncidentError, match="no report"):
            store.report_at(99)

    def test_itemset_history(self, store):
        store.extend([REPORT_A, REPORT_B])
        history = store.itemset_history((VICTIM, PORT80))
        assert history == [(5, 300, "suspicious"), (6, 350, "suspicious")]
        assert store.itemset_history((PROTO,)) == [(5, 120, "common-size")]

    def test_itemset_history_bounded_by_span(self, store):
        """An incident's drill-down must not absorb the history of an
        earlier, closed incident that carried the same key."""
        store.extend([
            make_report(i, [((VICTIM, PORT80), 100 + i, "suspicious")])
            for i in (1, 2, 10, 11)
        ])
        assert store.itemset_history(
            (VICTIM, PORT80), since=10, until=11
        ) == [(10, 110, "suspicious"), (11, 111, "suspicious")]
        assert store.itemset_history(
            (VICTIM, PORT80), until=2
        ) == [(1, 101, "suspicious"), (2, 102, "suspicious")]

    def test_empty_report_round_trips(self, store):
        empty = make_report(3, [], alarmed=("dstPort",))
        store.append(empty)
        assert store.reports() == [empty]


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "inc.db")
        with IncidentStore(path) as store:
            store.append(REPORT_A)
        with IncidentStore(path) as store:
            assert store.reports() == [REPORT_A]

    def test_wal_mode(self, tmp_path):
        path = str(tmp_path / "inc.db")
        with IncidentStore(path) as store:
            mode = store._connection().execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
            assert mode == "wal"

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "inc.db")
        IncidentStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE store_meta SET value = '999' "
            "WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(IncidentError, match="schema version"):
            IncidentStore(path)

    def test_closed_store_raises(self, tmp_path):
        store = IncidentStore(str(tmp_path / "inc.db"))
        store.close()
        store.close()  # idempotent
        with pytest.raises(IncidentError, match="closed"):
            store.append(REPORT_A)

    def test_open_store_must_exist(self, tmp_path):
        with pytest.raises(IncidentError, match="no incident store"):
            open_store(str(tmp_path / "missing.db"), must_exist=True)

    def test_non_sqlite_file_rejected_cleanly(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_text("this is not a database\n")
        with pytest.raises(IncidentError, match="cannot open store"):
            IncidentStore(str(path))

    def test_future_version_store_rejected_without_mutation(
        self, tmp_path
    ):
        """A store written by a future layout must be refused before
        the WAL flip or the v1 schema script touch it - an older binary
        must not corrupt a newer store it cannot read."""
        path = str(tmp_path / "future.db")
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE store_meta (key TEXT PRIMARY KEY, "
            "value TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO store_meta VALUES ('schema_version', '2')"
        )
        conn.execute("CREATE TABLE reports_v2 (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(IncidentError, match="schema version 2"):
            IncidentStore(path)
        conn = sqlite3.connect(path)
        tables = {
            row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        journal = conn.execute("PRAGMA journal_mode").fetchone()[0]
        conn.close()
        assert tables == {"store_meta", "reports_v2"}
        assert journal != "wal"

    def test_foreign_database_rejected_without_mutation(self, tmp_path):
        """Opening some other application's SQLite file (e.g. a wrong
        path to `repro-extract incidents`) must refuse - and must not
        install the store schema or flip the file to WAL."""
        path = str(tmp_path / "other-app.db")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        conn.commit()
        conn.close()
        with pytest.raises(IncidentError, match="not an incident store"):
            IncidentStore(path)
        conn = sqlite3.connect(path)
        tables = {
            row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        journal = conn.execute("PRAGMA journal_mode").fetchone()[0]
        conn.close()
        assert tables == {"users"}
        assert journal != "wal"

    def test_open_store_creates_when_allowed(self, tmp_path):
        path = str(tmp_path / "new.db")
        with open_store(path) as store:
            assert len(store) == 0


class TestCompact:
    def test_compact_drops_old_reports(self, store):
        store.extend([make_report(i) for i in range(10)])
        deleted = store.compact(before_interval=7)
        assert deleted == 7
        assert store.intervals() == [7, 8, 9]

    def test_compact_cascades_to_itemsets(self, store):
        store.extend([REPORT_A, REPORT_B])
        store.compact(before_interval=6)
        # interval-5 occurrence gone, interval-6 one kept
        assert store.itemset_history((VICTIM, PORT80)) == [
            (6, 350, "suspicious")
        ]

    def test_pure_vacuum_deletes_nothing(self, store):
        store.append(REPORT_A)
        assert store.compact() == 0
        assert len(store) == 1

    def test_compact_reclaims_file_space(self, tmp_path):
        path = tmp_path / "inc.db"
        with IncidentStore(str(path)) as store:
            big = make_report(
                0,
                [((encode_item(Feature.SRC_IP, i),), 100, "suspicious")
                 for i in range(500)],
            )
            store.append(big)  # interval 0, before the log advances
            store.extend(make_report(
                i, [((VICTIM, PORT80), 300, "suspicious")]
            ) for i in range(1, 50))
            store._connection().execute("PRAGMA wal_checkpoint(FULL)")
            before = path.stat().st_size
            store.compact(before_interval=50)
            store._connection().execute("PRAGMA wal_checkpoint(FULL)")
            after = path.stat().st_size
        assert after < before


class TestLastInterval:
    def test_unset_by_default(self, store):
        assert store.last_interval() is None

    def test_note_is_monotonic(self, store):
        store.note_interval(7)
        store.note_interval(3)  # an older value never wins
        assert store.last_interval() == 7
        store.note_interval(9)
        assert store.last_interval() == 9

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "inc.db")
        with IncidentStore(path) as store:
            store.note_interval(12)
        with IncidentStore(path) as store:
            assert store.last_interval() == 12

    def test_reingest_into_noted_store_refused(self, store):
        """Re-running extract/stream --store against the same database
        must not silently duplicate reports and double the supports."""
        store.extend([REPORT_A, REPORT_B])  # intervals 5 and 6
        store.note_interval(6)
        with pytest.raises(IncidentError, match="duplicate"):
            store.append(REPORT_A)
        with pytest.raises(IncidentError, match="duplicate"):
            store.extend([REPORT_B])
        # New intervals keep appending - the log stays monotonic.
        store.append(make_report(7))
        assert store.intervals() == [5, 6, 7]

    def test_extend_arms_the_guard_itself(self, store):
        """One batch is one ingest: a repeated bulk import must trip
        the guard without anyone calling note_interval manually."""
        store.extend([REPORT_B, REPORT_A])  # any order within a batch
        assert store.last_interval() == 6
        with pytest.raises(IncidentError, match="duplicate"):
            store.extend([REPORT_A, REPORT_B])
        assert store.intervals() == [5, 6]

    def test_trailing_clean_stretch_ages_incidents(self, store):
        # Reports exist only for alarmed intervals: without the noted
        # last-processed interval, an attack that ended at interval 6
        # would read "active" forever.
        store.extend([REPORT_A, REPORT_B])  # intervals 5 and 6
        assert store.incidents(quiet_gap=2)[0].incident.state == "active"
        store.note_interval(20)
        assert store.incidents(quiet_gap=2)[0].incident.state == "closed"


class TestKnobPersistence:
    def test_explicit_knobs_survive_reopen(self, tmp_path):
        """The CLI query path (open_store, no knob args) must correlate
        with the knobs the store was written with, not silently revert
        to 0.5/2."""
        path = str(tmp_path / "inc.db")
        with IncidentStore(path, jaccard=1.0, quiet_gap=7) as store:
            store.append(make_report(
                5, [((VICTIM, PORT80), 300, "suspicious")]
            ))
            store.append(make_report(
                11, [((VICTIM, PORT80), 400, "suspicious")]
            ))
        with open_store(path, must_exist=True) as store:
            assert store.jaccard == 1.0
            assert store.quiet_gap == 7
            # quiet_gap=7 keeps the gap-6 reappearance in ONE incident;
            # the 0.5/2 fallback would have split it.
            assert len(store.incidents()) == 1

    def test_fresh_store_falls_back_to_defaults(self, tmp_path):
        with IncidentStore(str(tmp_path / "inc.db")) as store:
            assert store.jaccard == 0.5
            assert store.quiet_gap == 2

    def test_reopen_with_explicit_knobs_overwrites(self, tmp_path):
        path = str(tmp_path / "inc.db")
        IncidentStore(path, jaccard=1.0, quiet_gap=7).close()
        IncidentStore(path, quiet_gap=3).close()  # jaccard untouched
        with open_store(path) as store:
            assert store.jaccard == 1.0
            assert store.quiet_gap == 3

    def test_invalid_knobs_rejected_before_persisting(self, tmp_path):
        """A bad explicit knob must fail at the door - persisted, it
        would poison every later open of the store."""
        path = str(tmp_path / "inc.db")
        with pytest.raises(IncidentError, match="jaccard"):
            IncidentStore(path, jaccard=0.0)
        with pytest.raises(IncidentError, match="quiet_gap"):
            IncidentStore(path, quiet_gap=2.5)
        with pytest.raises(IncidentError, match="quiet_gap"):
            IncidentStore(path, quiet_gap=0)
        # The rejections wrote nothing: the store opens clean.
        with open_store(path) as store:
            assert (store.jaccard, store.quiet_gap) == (0.5, 2)

    def test_integer_valued_float_quiet_gap_canonicalized(self, tmp_path):
        """quiet_gap=2.0 is valid but must persist as '2', not '2.0' -
        a non-canonical rendering would make every later int() parse
        (and hence every later open) fail."""
        path = str(tmp_path / "inc.db")
        IncidentStore(path, jaccard=1.0, quiet_gap=2.0).close()
        with open_store(path) as store:
            assert store.quiet_gap == 2
            assert isinstance(store.quiet_gap, int)
            assert store.jaccard == 1.0

    def test_default_config_write_run_keeps_tuned_knobs(self, tmp_path):
        """A later append run with knob-less config (the CLI write path
        has no jaccard/quiet-gap flags) must not clobber the knobs the
        store was tuned with."""
        from repro.core.config import ExtractionConfig
        from repro.core.pipeline import AnomalyExtractor

        path = str(tmp_path / "inc.db")
        IncidentStore(path, jaccard=0.9, quiet_gap=5).close()
        with AnomalyExtractor(ExtractionConfig(store_path=path)):
            pass
        with open_store(path) as store:
            assert store.jaccard == 0.9
            assert store.quiet_gap == 5


class TestCorruption:
    def _truncate_rows(self, path):
        conn = sqlite3.connect(path)
        conn.execute("UPDATE reports SET json = substr(json, 1, 10)")
        conn.commit()
        conn.close()

    def test_corrupt_row_in_reports(self, tmp_path):
        path = str(tmp_path / "inc.db")
        with IncidentStore(path) as store:
            store.append(REPORT_A)
        self._truncate_rows(path)
        with IncidentStore(path) as store:
            with pytest.raises(IncidentError, match="corrupt report"):
                store.reports()

    def test_corrupt_persisted_knob_wrapped(self, tmp_path):
        """A hand-edited knob value must surface as IncidentError (the
        CLI's 'error: ...' exit-2 contract), not a raw ValueError."""
        path = str(tmp_path / "inc.db")
        IncidentStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "INSERT OR REPLACE INTO store_meta VALUES "
            "('incident_jaccard', 'banana')"
        )
        conn.commit()
        conn.close()
        with pytest.raises(IncidentError, match="cannot open store"):
            IncidentStore(path)

    def test_corrupt_row_in_report_at(self, tmp_path):
        path = str(tmp_path / "inc.db")
        with IncidentStore(path) as store:
            store.append(REPORT_A)
        self._truncate_rows(path)
        with IncidentStore(path) as store:
            with pytest.raises(IncidentError, match="corrupt report"):
                store.report_at(REPORT_A.interval)


class TestSinkIntegration:
    def test_store_satisfies_report_sink(self, store):
        # append() is the whole sink protocol run_trace/run_stream use.
        from repro.core.pipeline import ReportSink

        assert isinstance(store, ReportSink)

    def test_incidents_convenience(self, store):
        store.extend([REPORT_A, REPORT_B])
        ranked = store.incidents(jaccard=0.5, quiet_gap=2)
        assert ranked
        top = ranked[0].incident
        assert top.key == tuple(sorted((VICTIM, PORT80)))
        assert top.intervals_seen == 2

    def test_config_correlation_knobs_reach_the_store(self, tmp_path):
        """ExtractionConfig.incident_jaccard / incident_quiet_gap must
        actually govern store.incidents(), not be dead knobs."""
        from repro.core.config import ExtractionConfig
        from repro.core.pipeline import AnomalyExtractor

        config = ExtractionConfig(
            store_path=str(tmp_path / "inc.db"),
            incident_jaccard=1.0,
            incident_quiet_gap=7,
        )
        with AnomalyExtractor(config) as extractor:
            store = extractor.store
            assert store.jaccard == 1.0
            assert store.quiet_gap == 7
            # quiet_gap=7 keeps the gap-6 reappearance in ONE incident;
            # the default gap of 2 would have split it into two.
            store.append(make_report(
                5, [((VICTIM, PORT80), 300, "suspicious")]
            ))
            store.append(make_report(
                11, [((VICTIM, PORT80), 400, "suspicious")]
            ))
            ranked = store.incidents()
            assert len(ranked) == 1
            assert ranked[0].incident.intervals_seen == 2
            # jaccard=1.0 (exact only): a drifted itemset at interval 12
            # must open a second incident instead of merging at ~0.67.
            store.append(make_report(
                12, [((VICTIM, PORT80, PROTO), 200, "suspicious")]
            ))
            assert len(store.incidents()) == 2
