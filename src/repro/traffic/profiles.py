"""Traffic profiles: parameter presets for the synthetic backbone.

The paper's dataset is a non-sampled NetFlow capture from a SWITCH/AS559
peering link (2.2 M internal addresses, ~92 M flows/hour).  We cannot
redistribute those traces, so :mod:`repro.traffic` synthesizes traffic
whose *feature distributions* have the properties the detectors and the
miner actually consume: Zipf-like endpoint and port popularity, a heavy
tail of flow sizes, a realistic protocol mix, and diurnal rate variation.
Profiles bundle those knobs; ``switch_like`` is the scaled-down default
used by the benchmarks, ``small_test`` keeps unit tests fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.flows.record import ip_to_int

#: Well-known service ports and their share of baseline destination-port
#: traffic.  Port 80 dominates, mirroring the Table II narrative where
#: port 80 matched 252 069 of 350 872 flows.
DEFAULT_SERVICE_PORTS: tuple[tuple[int, float], ...] = (
    (80, 0.42),
    (443, 0.14),
    (53, 0.09),
    (25, 0.06),
    (110, 0.02),
    (143, 0.02),
    (22, 0.02),
    (21, 0.01),
    (123, 0.01),
    (3389, 0.01),
)


@dataclass(frozen=True, slots=True)
class TrafficProfile:
    """All knobs of the baseline traffic model.

    Attributes:
        internal_network: first address of the "monitored" (SWITCH-like)
            address block, as a dotted quad.
        internal_hosts: number of addresses in the monitored block.
        external_hosts: size of the remote address pool.
        ip_zipf_exponent: skew of endpoint popularity (1.0 ~ classic Zipf).
        service_ports: (port, probability) pairs for destination ports;
            remaining mass goes to ephemeral ports.
        service_port_share: total probability that a baseline flow's
            destination port is a service port (vs ephemeral).
        ephemeral_range: inclusive-exclusive range of ephemeral ports.
        tcp_share / udp_share: protocol mix; ICMP receives the remainder.
        packets_tail_alpha: Pareto tail exponent of packets-per-flow.
        packets_cap: upper clip for packets per flow.
        mean_bytes_per_packet / bytes_jitter: packet size model.
        flows_per_interval: average baseline flows per measurement
            interval at the diurnal peak-to-trough midpoint.
    """

    internal_network: str = "130.59.0.0"
    internal_hosts: int = 8192
    external_hosts: int = 65536
    ip_zipf_exponent: float = 1.05
    service_ports: tuple[tuple[int, float], ...] = DEFAULT_SERVICE_PORTS
    service_port_share: float = 0.82
    ephemeral_range: tuple[int, int] = (1024, 65536)
    tcp_share: float = 0.80
    udp_share: float = 0.17
    packets_tail_alpha: float = 1.3
    packets_cap: int = 50_000
    mean_bytes_per_packet: float = 620.0
    bytes_jitter: float = 0.35
    flows_per_interval: int = 20_000

    def __post_init__(self) -> None:
        if self.internal_hosts < 2 or self.external_hosts < 2:
            raise ConfigError("need at least two hosts per pool")
        if not 0.0 < self.service_port_share <= 1.0:
            raise ConfigError(
                f"service_port_share must be in (0, 1]: {self.service_port_share}"
            )
        if self.tcp_share < 0 or self.udp_share < 0 or (
            self.tcp_share + self.udp_share
        ) > 1.0:
            raise ConfigError("protocol shares must be non-negative and sum <= 1")
        lo, hi = self.ephemeral_range
        if not 0 < lo < hi <= 65536:
            raise ConfigError(f"bad ephemeral range: {self.ephemeral_range}")
        if self.flows_per_interval < 1:
            raise ConfigError("flows_per_interval must be positive")
        if self.packets_tail_alpha <= 0:
            raise ConfigError("packets_tail_alpha must be positive")
        total_service = sum(weight for _, weight in self.service_ports)
        if total_service <= 0:
            raise ConfigError("service port weights must have positive mass")

    @property
    def internal_base(self) -> int:
        """Integer form of the first monitored address."""
        return ip_to_int(self.internal_network)

    @property
    def icmp_share(self) -> float:
        return max(0.0, 1.0 - self.tcp_share - self.udp_share)


def switch_like(flows_per_interval: int = 20_000) -> TrafficProfile:
    """The default scaled-down SWITCH/AS559-like profile.

    The real link carries ~23 M flows per 15-minute interval; we default
    to 20 k so a two-week experiment (1344 intervals) stays laptop-sized.
    Every benchmark reports the scale factor next to its results.
    """
    return TrafficProfile(flows_per_interval=flows_per_interval)


def small_test(flows_per_interval: int = 600) -> TrafficProfile:
    """Tiny profile for unit tests: small pools, few flows, same shape."""
    return TrafficProfile(
        internal_hosts=256,
        external_hosts=1024,
        flows_per_interval=flows_per_interval,
    )
