"""Unit tests for report rendering and admin triage."""

from repro.core.report import (
    COMMON_SERVICE_PORTS,
    render_itemset_table,
    triage,
    triage_all,
)
from repro.detection.features import Feature
from repro.mining.items import FrequentItemset, encode_item


def _itemset(pairs, support=100):
    items = tuple(sorted(encode_item(f, v) for f, v in pairs))
    return FrequentItemset(items=items, support=support)


class TestTriage:
    def test_uncommon_port_suspicious(self):
        entry = triage(_itemset([(Feature.DST_PORT, 7000)]))
        assert entry.hint == "suspicious"
        assert not entry.looks_benign

    def test_common_port_flagged_as_service(self):
        entry = triage(_itemset([(Feature.DST_PORT, 80), (Feature.PROTOCOL, 6)]))
        assert entry.hint == "common-service"
        assert entry.looks_benign

    def test_backscatter_signature_stays_suspicious(self):
        entry = triage(
            _itemset(
                [
                    (Feature.DST_PORT, 9022),
                    (Feature.PACKETS, 1),
                    (Feature.BYTES, 40),
                ]
            )
        )
        assert entry.hint == "suspicious"

    def test_size_only_itemset_common(self):
        entry = triage(_itemset([(Feature.PROTOCOL, 6), (Feature.PACKETS, 1)]))
        assert entry.hint == "common-size"

    def test_size_only_with_unusual_packets_suspicious(self):
        entry = triage(_itemset([(Feature.PROTOCOL, 6), (Feature.PACKETS, 12)]))
        assert entry.hint == "suspicious"

    def test_endpoint_without_port_suspicious(self):
        entry = triage(_itemset([(Feature.DST_IP, 42)]))
        assert entry.hint == "suspicious"

    def test_endpoint_with_common_port_is_service(self):
        # Hosts A/B/C in Table II: proxies on port 80 - easy to identify.
        entry = triage(
            _itemset([(Feature.SRC_IP, 7), (Feature.DST_PORT, 80)])
        )
        assert entry.hint == "common-service"

    def test_mixed_ports_suspicious_if_any_uncommon(self):
        entry = triage(
            _itemset([(Feature.SRC_PORT, 80), (Feature.DST_PORT, 31337)])
        )
        assert entry.hint == "suspicious"

    def test_triage_all_preserves_order(self):
        itemsets = [
            _itemset([(Feature.DST_PORT, 7000)]),
            _itemset([(Feature.DST_PORT, 80)]),
        ]
        hints = [t.hint for t in triage_all(itemsets)]
        assert hints == ["suspicious", "common-service"]

    def test_common_ports_include_paper_examples(self):
        assert 80 in COMMON_SERVICE_PORTS
        assert 25 in COMMON_SERVICE_PORTS


class TestRenderTable:
    def test_empty(self):
        assert "no frequent item-sets" in render_itemset_table([])

    def test_contains_items_and_support(self):
        table = render_itemset_table(
            [_itemset([(Feature.DST_PORT, 7000)], support=1234)]
        )
        assert "dstPort=7000" in table
        assert "1234" in table
        assert "suspicious" in table

    def test_header_row(self):
        table = render_itemset_table([_itemset([(Feature.DST_PORT, 80)])])
        assert table.splitlines()[0].startswith("item-set")
