"""Traffic features monitored by the histogram detectors.

The paper uses five detectors (Section II-E, "Number of Detectors n"):
source IP, destination IP, source port, destination port, and packets
per flow.  The mining step additionally uses protocol and byte counts,
so the full seven-feature enum lives here and both layers share it.

Feature *sets* are named through the :data:`repro.registry.feature_sets`
registry ("paper", "all", ...), and :func:`resolve_features` turns any
spec - a registered name, feature names, :class:`Feature` members, or
duck-compatible :class:`CustomFeature` objects - into the tuple
:class:`~repro.detection.manager.DetectorBank` consumes.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.flows.table import FlowTable


class Feature(enum.Enum):
    """The seven flow features; values are the FlowTable column names."""

    SRC_IP = "src_ip"
    DST_IP = "dst_ip"
    SRC_PORT = "src_port"
    DST_PORT = "dst_port"
    PROTOCOL = "protocol"
    PACKETS = "packets"
    BYTES = "bytes"

    @property
    def column(self) -> str:
        return self.value

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]

    def extract(self, flows: FlowTable) -> np.ndarray:
        """The feature column of a flow table."""
        return flows.column(self.value)

    def format_value(self, value: int) -> str:
        """Human-readable rendering of one feature value."""
        if self in (Feature.SRC_IP, Feature.DST_IP):
            from repro.flows.record import int_to_ip

            return int_to_ip(int(value))
        if self is Feature.PROTOCOL:
            from repro.flows.record import PROTOCOL_NAMES

            return PROTOCOL_NAMES.get(int(value), str(int(value)))
        return str(int(value))


_SHORT_NAMES = {
    Feature.SRC_IP: "srcIP",
    Feature.DST_IP: "dstIP",
    Feature.SRC_PORT: "srcPort",
    Feature.DST_PORT: "dstPort",
    Feature.PROTOCOL: "proto",
    Feature.PACKETS: "#packets",
    Feature.BYTES: "#bytes",
}

#: The five features the paper's detectors monitor (Section II-E).
DETECTOR_FEATURES = (
    Feature.SRC_IP,
    Feature.DST_IP,
    Feature.SRC_PORT,
    Feature.DST_PORT,
    Feature.PACKETS,
)

#: All seven mining features in the canonical transaction order.
MINING_FEATURES = tuple(Feature)


def parse_feature(name: str) -> Feature:
    """Resolve a feature from its column name or short name.

    >>> parse_feature("dst_port") is Feature.DST_PORT
    True
    >>> parse_feature("dstPort") is Feature.DST_PORT
    True
    """
    for feature in Feature:
        if name == feature.value or name == feature.short_name:
            return feature
    raise ConfigError(f"unknown feature name: {name!r}")


@dataclass(frozen=True)
class CustomFeature:
    """A user-defined detector feature over a flow-table column.

    Duck-compatible with :class:`Feature` everywhere the detection layer
    looks - ``value``/``column`` (the hash-salt / column name),
    ``short_name``, ``extract``, ``format_value`` - so a custom feature
    drops into :class:`~repro.detection.manager.DetectorBank`,
    meta-data voting, and the prefilter unchanged.

    ``transform`` derives the monitored values from the column, e.g. a
    /24-subnet detector over destination IPs::

        subnet24 = CustomFeature(
            "dstSubnet24", "dst_ip",
            transform=lambda values: values >> np.uint64(8),
        )

    Register tuples of features (enum and custom mixed freely) with
    :data:`repro.registry.feature_sets` to make them selectable by
    name.
    """

    short_name: str
    column: str
    transform: object | None = None

    def __post_init__(self) -> None:
        if not self.short_name:
            raise ConfigError("custom feature needs a short_name")
        if not self.column:
            raise ConfigError(
                f"custom feature {self.short_name!r} needs a column"
            )

    @property
    def value(self) -> str:
        """Distinct hash-salt identity (mirrors ``Feature.value``)."""
        return f"{self.column}:{self.short_name}"

    def extract(self, flows: FlowTable) -> np.ndarray:
        values = flows.column(self.column)
        if self.transform is not None:
            values = self.transform(values)
        return values

    def format_value(self, value: int) -> str:
        return str(int(value))


#: Anything :class:`~repro.detection.manager.DetectorBank` accepts as a
#: monitored feature.
FeatureLike = Feature | CustomFeature


def resolve_features(spec: object) -> tuple[FeatureLike, ...]:
    """Normalize a feature spec into a tuple of feature objects.

    Accepts a registered feature-set name (via
    :data:`repro.registry.feature_sets`), a single feature name, or an
    iterable mixing :class:`Feature` members, names, and
    :class:`CustomFeature` objects.  Unknown set names raise
    :class:`~repro.errors.RegistryError` listing the registered sets.
    """
    if spec is None:
        return DETECTOR_FEATURES
    if isinstance(spec, (Feature, CustomFeature)):
        return (spec,)
    if isinstance(spec, str):
        from repro.registry import feature_sets

        if spec in feature_sets:
            return tuple(feature_sets.get(spec))
        try:
            return (parse_feature(spec),)
        except ConfigError:
            # Not a single feature either: report the richer error,
            # listing the registered set names.
            feature_sets.get(spec)  # raises RegistryError
            raise  # pragma: no cover - get() always raises above
    if isinstance(spec, Iterable):
        resolved = []
        for item in spec:
            if isinstance(item, str):
                resolved.append(parse_feature(item))
            elif isinstance(item, (Feature, CustomFeature)):
                resolved.append(item)
            elif hasattr(item, "extract") and hasattr(item, "short_name"):
                # Duck-typed custom feature objects pass through.
                resolved.append(item)
            else:
                raise ConfigError(f"not a feature: {item!r}")
        return tuple(resolved)
    raise ConfigError(f"cannot resolve features from {spec!r}")


def _register_builtin_sets() -> None:
    from repro.registry import feature_sets

    # "paper": the five detectors of Section II-E (the default bank).
    feature_sets.register("paper", DETECTOR_FEATURES, replace=True)
    feature_sets.register("detector", DETECTOR_FEATURES, replace=True)
    # "all": every mining feature, for ablations that also watch
    # protocol and byte counts.
    feature_sets.register("all", MINING_FEATURES, replace=True)
    feature_sets.register("mining", MINING_FEATURES, replace=True)
    # "endpoints": the address/port features only (no volume counts).
    feature_sets.register(
        "endpoints",
        (Feature.SRC_IP, Feature.DST_IP, Feature.SRC_PORT, Feature.DST_PORT),
        replace=True,
    )


_register_builtin_sets()
