"""Unit tests for cross-interval incident correlation."""

import pytest

from repro.detection.features import Feature
from repro.errors import IncidentError
from repro.incidents.correlate import (
    IncidentCorrelator,
    correlate,
    jaccard_items,
)
from repro.mining.items import encode_item
from tests.incidents.test_store import make_report

VICTIM = encode_item(Feature.DST_IP, 42)
PORT80 = encode_item(Feature.DST_PORT, 80)
PROTO = encode_item(Feature.PROTOCOL, 6)
PK1 = encode_item(Feature.PACKETS, 1)
SCANNER = encode_item(Feature.SRC_IP, 7)
PORT445 = encode_item(Feature.DST_PORT, 445)


class TestJaccard:
    def test_identical(self):
        assert jaccard_items((1, 2), (2, 1)) == 1.0

    def test_disjoint(self):
        assert jaccard_items((1,), (2,)) == 0.0

    def test_partial(self):
        assert jaccard_items((1, 2, 3), (2, 3, 4)) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_items((), ()) == 1.0


class TestExactMerging:
    def test_same_key_across_intervals_is_one_incident(self):
        reports = [
            make_report(10, [((VICTIM, PORT80), 300, "suspicious")]),
            make_report(11, [((VICTIM, PORT80), 500, "suspicious")]),
            make_report(12, [((VICTIM, PORT80), 200, "suspicious")]),
        ]
        incidents = correlate(reports)
        assert len(incidents) == 1
        inc = incidents[0]
        assert inc.first_seen == 10
        assert inc.last_seen == 12
        assert inc.intervals_seen == 3
        assert inc.span_intervals == 3
        assert inc.peak_support == 500
        assert inc.total_support == 1000
        assert inc.suspicious

    def test_disjoint_itemsets_stay_separate(self):
        reports = [
            make_report(10, [((VICTIM, PORT80), 300, "suspicious")]),
            make_report(11, [((SCANNER, PORT445), 250, "suspicious")]),
        ]
        incidents = correlate(reports)
        assert len(incidents) == 2
        assert {i.key for i in incidents} == {
            tuple(sorted((VICTIM, PORT80))),
            tuple(sorted((SCANNER, PORT445))),
        }

    def test_two_itemsets_same_interval_count_one_interval(self):
        report = make_report(
            10,
            [
                ((VICTIM, PORT80), 300, "suspicious"),
                ((VICTIM, PORT80, PROTO), 280, "suspicious"),
            ],
        )
        incidents = correlate([report], jaccard=0.5)
        assert len(incidents) == 1
        assert incidents[0].intervals_seen == 1
        assert incidents[0].total_support == 580

    def test_detector_votes_tracked(self):
        reports = [
            make_report(10, [((VICTIM,), 100, "suspicious")],
                        alarmed=("dstIP",)),
            make_report(11, [((VICTIM,), 100, "suspicious")],
                        alarmed=("dstIP", "srcIP", "dstPort")),
        ]
        (inc,) = correlate(reports)
        assert inc.peak_votes == 3


class TestJaccardMerging:
    def test_drifting_itemset_merges(self):
        # Interval 11 picks up one extra item: 3/4 overlap >= 0.5.
        reports = [
            make_report(10, [((VICTIM, PORT80, PROTO), 300, "suspicious")]),
            make_report(
                11, [((VICTIM, PORT80, PROTO, PK1), 280, "suspicious")]
            ),
        ]
        incidents = correlate(reports, jaccard=0.5)
        assert len(incidents) == 1
        assert incidents[0].items == {VICTIM, PORT80, PROTO, PK1}

    def test_below_threshold_opens_new_incident(self):
        reports = [
            make_report(10, [((VICTIM, PORT80, PROTO), 300, "suspicious")]),
            make_report(11, [((PROTO, PK1), 280, "common-size")]),
        ]
        # overlap {PROTO} / union of 4 = 0.25 < 0.5
        assert len(correlate(reports, jaccard=0.5)) == 2

    def test_exact_only_mode(self):
        reports = [
            make_report(10, [((VICTIM, PORT80, PROTO), 300, "suspicious")]),
            make_report(
                11, [((VICTIM, PORT80, PROTO, PK1), 280, "suspicious")]
            ),
        ]
        assert len(correlate(reports, jaccard=1.0)) == 2

    def test_tie_merges_into_earliest_incident(self):
        correlator = IncidentCorrelator(jaccard=0.5, quiet_gap=2)
        # {VICTIM, PROTO} vs {VICTIM, PORT80}: 1/3 < 0.5 -> two
        # incidents open side by side.
        correlator.observe(make_report(10, [
            ((VICTIM, PORT80), 300, "suspicious"),
            ((VICTIM, PROTO), 200, "suspicious"),
        ]))
        assert len(correlator.incidents()) == 2
        # {VICTIM} scores exactly 0.5 against both; the tie must go to
        # the earlier incident, deterministically.
        correlator.observe(
            make_report(11, [((VICTIM,), 100, "suspicious")])
        )
        incidents = correlator.incidents()
        assert len(incidents) == 2
        assert incidents[0].last_seen == 11
        assert incidents[1].last_seen == 10


class TestLifecycle:
    def test_states_at_snapshot(self):
        reports = [
            make_report(10, [((VICTIM, PORT80), 300, "suspicious")]),
            make_report(12, [((SCANNER, PORT445), 250, "suspicious")]),
            make_report(15, [((PROTO, PK1), 120, "common-size")]),
        ]
        incidents = correlate(reports, quiet_gap=3)
        by_key = {i.key: i for i in incidents}
        # now = 15: VICTIM gap 5 > 3 -> closed; SCANNER gap 3 -> quiet.
        assert by_key[tuple(sorted((VICTIM, PORT80)))].state == "closed"
        assert by_key[tuple(sorted((SCANNER, PORT445)))].state == "quiet"
        assert by_key[tuple(sorted((PROTO, PK1)))].state == "active"

    def test_state_at_boundaries(self):
        (inc,) = correlate(
            [make_report(10, [((VICTIM,), 100, "suspicious")])]
        )
        assert inc.state_at(10, quiet_gap=2) == "active"
        assert inc.state_at(11, quiet_gap=2) == "quiet"
        assert inc.state_at(12, quiet_gap=2) == "quiet"
        assert inc.state_at(13, quiet_gap=2) == "closed"

    def test_reappearance_after_close_opens_new_incident(self):
        reports = [
            make_report(10, [((VICTIM, PORT80), 300, "suspicious")]),
            # gap of 5 intervals > quiet_gap=2: the first incident is
            # closed when the same itemset returns.
            make_report(16, [((VICTIM, PORT80), 400, "suspicious")]),
        ]
        incidents = correlate(reports, quiet_gap=2)
        assert len(incidents) == 2
        assert incidents[0].state == "closed"
        assert incidents[1].state == "active"
        assert incidents[0].incident_id != incidents[1].incident_id

    def test_reappearance_within_gap_extends(self):
        reports = [
            make_report(10, [((VICTIM, PORT80), 300, "suspicious")]),
            make_report(12, [((VICTIM, PORT80), 400, "suspicious")]),
        ]
        (inc,) = correlate(reports, quiet_gap=2)
        assert inc.intervals_seen == 2
        assert inc.last_seen == 12

    def test_snapshot_now_ages_trailing_clean_stretch(self):
        # Reports only exist for alarmed intervals; an explicit `now`
        # (the last interval actually processed) must age an ended
        # attack toward quiet and closed.
        reports = [make_report(10, [((VICTIM, PORT80), 300, "suspicious")])]
        assert correlate(reports, quiet_gap=2)[0].state == "active"
        assert correlate(reports, quiet_gap=2, now=12)[0].state == "quiet"
        assert correlate(reports, quiet_gap=2, now=13)[0].state == "closed"

    def test_snapshot_now_older_than_observed_is_ignored(self):
        reports = [make_report(10, [((VICTIM, PORT80), 300, "suspicious")])]
        (inc,) = correlate(reports, quiet_gap=2, now=0)
        assert inc.state == "active"


class TestValidation:
    def test_out_of_order_reports_rejected(self):
        correlator = IncidentCorrelator()
        correlator.observe(make_report(10))
        with pytest.raises(IncidentError, match="interval order"):
            correlator.observe(make_report(9))

    def test_same_interval_twice_allowed(self):
        correlator = IncidentCorrelator()
        correlator.observe(
            make_report(10, [((VICTIM,), 100, "suspicious")])
        )
        correlator.observe(
            make_report(10, [((VICTIM,), 50, "suspicious")])
        )
        (inc,) = correlator.incidents()
        assert inc.total_support == 150
        assert inc.intervals_seen == 1

    def test_bad_jaccard(self):
        with pytest.raises(IncidentError, match="jaccard"):
            IncidentCorrelator(jaccard=0.0)
        with pytest.raises(IncidentError, match="jaccard"):
            IncidentCorrelator(jaccard=1.5)

    def test_bad_quiet_gap(self):
        with pytest.raises(IncidentError, match="quiet_gap"):
            IncidentCorrelator(quiet_gap=0)

    def test_empty_stream(self):
        assert correlate([]) == []

    def test_now_tracks_latest_interval(self):
        correlator = IncidentCorrelator()
        assert correlator.now is None
        correlator.observe(make_report(7))
        assert correlator.now == 7


class TestSerialization:
    def test_incident_to_dict(self):
        (inc,) = correlate(
            [make_report(10, [((VICTIM, PORT80), 300, "suspicious")])]
        )
        data = inc.to_dict()
        assert data["incident_id"] == inc.incident_id
        assert data["key"] == sorted((VICTIM, PORT80))
        assert "dstIP=" in data["key_rendered"]
        assert data["state"] == "active"
        assert data["suspicious"] is True
        assert data["hints"] == {"suspicious": 1}
