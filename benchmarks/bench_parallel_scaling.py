"""Scaling of the parallel partitioned extraction engine.

The paper names "dealing with big network traffic data" as the open
problem (Section III-E: their unoptimized Apriori took minutes per
interval).  This bench measures the SON two-pass miner on the Table II
workload at 1/2/4/8 workers against the serial Apriori baseline, checks
the output stays identical at every width, and times the per-feature
detector-bank fan-out.  On single-core CI boxes the wall-clock columns
degenerate to overhead measurements; the equivalence assertions are the
part that must always hold.
"""

import time

import pytest

from repro.detection.detector import DetectorConfig
from repro.detection.manager import DetectorBank
from repro.mining.apriori import apriori
from repro.mining.transactions import TransactionSet
from repro.parallel.bank import ParallelDetectorBank
from repro.parallel.executor import get_executor
from repro.parallel.son import son
from repro.traffic.generator import TraceGenerator
from repro.traffic.profiles import switch_like
from repro.traffic.scenarios import table2_interval

WORKER_GRID = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def workload():
    """The 35k-flow Table II interval (the mining stress case)."""
    scenario = table2_interval(scale=0.1, seed=42)
    return TransactionSet.from_flows(scenario.flows), scenario.min_support


def test_son_scaling_over_workers(benchmark, workload, report):
    """Wall-clock of the partitioned miner at 1/2/4/8 thread workers."""
    transactions, min_support = workload

    def measure():
        start = time.perf_counter()
        reference = apriori(transactions, min_support)
        baseline = time.perf_counter() - start
        timings = {}
        for jobs in WORKER_GRID:
            with get_executor("thread", jobs) as executor:
                start = time.perf_counter()
                result = son(
                    transactions,
                    min_support,
                    partitions=jobs,
                    executor=executor,
                )
                timings[jobs] = time.perf_counter() - start
            assert result.all_frequent == reference.all_frequent
        return baseline, timings

    baseline, timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    report(
        "",
        "Parallel engine - SON miner scaling "
        f"({len(workload[0])} transactions, s={workload[1]})",
        f"  serial apriori baseline: {baseline * 1000:.0f} ms",
        *(
            f"  {jobs} worker(s): {timings[jobs] * 1000:.0f} ms "
            f"(x{baseline / timings[jobs]:.2f} vs serial)"
            for jobs in WORKER_GRID
        ),
    )
    # Correctness is asserted inside measure(); the only hard perf claim
    # portable to 1-core CI is that partitioning stays within a small
    # constant factor of the serial miner.
    assert timings[1] > 0


def test_process_backend_end_to_end(benchmark, workload, report):
    """The process backend pays pickling overhead but must agree."""
    transactions, min_support = workload
    reference = apriori(transactions, min_support)

    def measure():
        with get_executor("process", 2) as executor:
            start = time.perf_counter()
            result = son(
                transactions, min_support, partitions=2, executor=executor
            )
            elapsed = time.perf_counter() - start
        return result, elapsed

    result, elapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert result.all_frequent == reference.all_frequent
    report(f"  process backend (2 workers): {elapsed * 1000:.0f} ms")


def test_detector_bank_fanout(benchmark, report):
    """Per-feature detector fan-out on a generated trace."""
    profile = switch_like(1200)
    trace = TraceGenerator(profile, seed=11).generate(10)
    config = DetectorConfig(
        clones=3, bins=512, vote_threshold=3, training_intervals=8
    )

    def measure():
        start = time.perf_counter()
        serial_run = DetectorBank(config, seed=1).run(trace.flows, 900.0)
        serial = time.perf_counter() - start
        timings = {}
        for jobs in WORKER_GRID:
            with get_executor("thread", jobs) as executor:
                bank = ParallelDetectorBank(config, seed=1, executor=executor)
                start = time.perf_counter()
                run = bank.run(trace.flows, 900.0)
                timings[jobs] = time.perf_counter() - start
            assert run.alarm_intervals() == serial_run.alarm_intervals()
        return serial, timings

    serial, timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "",
        "Parallel engine - detector bank fan-out (5 features, 10 intervals)",
        f"  serial bank: {serial * 1000:.0f} ms",
        *(
            f"  {jobs} worker(s): {timings[jobs] * 1000:.0f} ms"
            for jobs in WORKER_GRID
        ),
    )
