"""Unit tests for the canned evaluation scenarios."""

import numpy as np
import pytest

from repro.anomalies.schedule import anomalous_interval_indices
from repro.errors import ConfigError
from repro.traffic.profiles import switch_like
from repro.traffic.scenarios import (
    TABLE2_PAPER_COUNTS,
    TABLE4_OCCURRENCES,
    table2_interval,
    two_day_trace,
    two_week_schedule,
    worm_outbreak_trace,
)


class TestTable2Scenario:
    def test_component_mix_matches_paper_ratios(self, table2_small):
        counts = table2_small.component_counts
        scale = table2_small.scale
        for key in ("flooding_dport_7000", "port_80", "port_9022", "port_25"):
            expected = int(TABLE2_PAPER_COUNTS[key] * scale)
            assert counts[key] == pytest.approx(expected, abs=1)
        assert counts["total"] == len(table2_small.flows)

    def test_port_composition(self, table2_small):
        flows = table2_small.flows
        ports, counts = np.unique(flows.dst_port, return_counts=True)
        by_port = dict(zip(ports.tolist(), counts.tolist()))
        assert by_port[80] == table2_small.component_counts["port_80"]
        assert by_port[7000] == table2_small.component_counts["flooding_dport_7000"]
        assert by_port[9022] == table2_small.component_counts["port_9022"]
        assert by_port[25] == table2_small.component_counts["port_25"]

    def test_flooding_flows_are_labelled(self, table2_small):
        flows = table2_small.flows
        flooding = flows.select(flows.dst_port == 7000)
        assert flooding.anomalous_mask.all()

    def test_http_flows_are_benign(self, table2_small):
        flows = table2_small.flows
        http = flows.select(flows.dst_port == 80)
        assert not http.anomalous_mask.any()

    def test_proxies_carry_port_80(self, table2_small):
        flows = table2_small.flows
        http = flows.select(flows.dst_port == 80)
        proxies = set(table2_small.proxy_hosts)
        assert set(np.unique(http.src_ip).tolist()) == proxies

    def test_scale_validation(self):
        with pytest.raises(ConfigError):
            table2_interval(scale=0.0)
        with pytest.raises(ConfigError):
            table2_interval(scale=1.5)

    def test_min_support_scales(self, table2_small):
        assert table2_small.min_support == int(10_000 * table2_small.scale)


class TestTwoWeekSchedule:
    def test_event_mix(self):
        profile = switch_like(100)
        schedule = two_week_schedule(profile, scale=0.01, seed=3)
        assert len(schedule) == sum(TABLE4_OCCURRENCES.values()) == 36
        kinds = [occ.injector.kind for occ in schedule.occurrences]
        for kind, count in TABLE4_OCCURRENCES.items():
            assert kinds.count(kind) == count

    def test_31_distinct_intervals(self):
        profile = switch_like(100)
        schedule = two_week_schedule(profile, scale=0.01, seed=3)
        flows, events = schedule.materialize(np.random.default_rng(0))
        touched = anomalous_interval_indices(events, 900.0, 1344)
        assert len(touched) == 31

    def test_training_prefix_clean(self):
        profile = switch_like(100)
        schedule = two_week_schedule(
            profile, scale=0.01, seed=3, training_intervals=96
        )
        firsts = [occ.start // 900.0 for occ in schedule.occurrences]
        assert min(firsts) > 96

    def test_too_short_trace_rejected(self):
        with pytest.raises(ConfigError):
            two_week_schedule(switch_like(100), n_intervals=100)


class TestOtherScenarios:
    def test_two_day_trace_has_two_events(self):
        trace = two_day_trace(flows_per_interval=200, seed=1)
        assert trace.n_intervals == 192
        assert len(trace.events) == 2
        assert trace.anomalous_intervals() == {60, 150}

    def test_worm_outbreak_trace(self):
        trace = worm_outbreak_trace(flows_per_interval=200, seed=1)
        assert len(trace.events) == 1
        assert trace.events[0].kind == "worm"
        assert trace.anomalous_intervals() == {8}
        # All three stage ports present in the labelled flows.
        worm_flows = trace.flows.select(trace.flows.anomalous_mask)
        ports = set(np.unique(worm_flows.dst_port).tolist())
        assert {445, 9996, 5554} <= ports
