"""Integration test for the union-vs-intersection ablation (Section II-A).

The Sasser-like worm has three flow-disjoint stages; per-stage meta-data
intersected across features matches nothing, while the union recovers
all stages.  This is the paper's central argument for union prefiltering.
"""

import numpy as np
import pytest

from repro.anomalies.worm import (
    SASSER_BACKDOOR_PORT,
    SASSER_FTP_PORT,
    SASSER_PAYLOAD_BYTES,
    SASSER_SCAN_PORT,
)
from repro.core.prefilter import prefilter
from repro.detection.features import Feature
from repro.detection.metadata import Metadata
from repro.flows.stream import interval_of
from repro.traffic.scenarios import worm_outbreak_trace


@pytest.fixture(scope="module")
def outbreak():
    trace = worm_outbreak_trace(flows_per_interval=1500, seed=23)
    interval = interval_of(trace.flows, 8, 900.0, origin=0.0)
    return trace, interval.flows


@pytest.fixture(scope="module")
def worm_metadata():
    """Meta-data a detector bank would report for the outbreak interval:
    the three stage ports plus the fixed payload size - flow-disjoint
    across stages exactly as in the paper's Sasser narrative."""
    meta = Metadata()
    meta.add(
        Feature.DST_PORT,
        np.array(
            [SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT],
            dtype=np.uint64,
        ),
    )
    meta.add(Feature.BYTES, np.array([SASSER_PAYLOAD_BYTES], dtype=np.uint64))
    return meta


class TestUnionVsIntersection:
    def test_union_catches_every_stage(self, outbreak, worm_metadata):
        _, flows = outbreak
        kept = prefilter(flows, worm_metadata, "union").flows
        ports = set(np.unique(kept.dst_port).tolist())
        assert {SASSER_SCAN_PORT, SASSER_BACKDOOR_PORT, SASSER_FTP_PORT} <= ports

    def test_union_recovers_nearly_all_event_flows(self, outbreak, worm_metadata):
        _, flows = outbreak
        kept = prefilter(flows, worm_metadata, "union").flows
        total_event = int(flows.anomalous_mask.sum())
        kept_event = int(kept.anomalous_mask.sum())
        assert kept_event / total_event > 0.99

    def test_intersection_misses_the_anomaly(self, outbreak, worm_metadata):
        _, flows = outbreak
        kept = prefilter(flows, worm_metadata, "intersection").flows
        # Intersection requires dstPort in stage-ports AND bytes=16384;
        # only the download stage could match both, and scans/backdoor
        # flows are lost entirely.
        assert int(kept.anomalous_mask.sum()) <= (
            int((flows.dst_port == SASSER_FTP_PORT).sum())
        )
        ports = set(np.unique(kept.dst_port).tolist())
        assert SASSER_SCAN_PORT not in ports
        assert SASSER_BACKDOOR_PORT not in ports

    def test_union_strictly_better_recall(self, outbreak, worm_metadata):
        _, flows = outbreak
        union_kept = prefilter(flows, worm_metadata, "union").flows
        inter_kept = prefilter(flows, worm_metadata, "intersection").flows
        assert (
            int(union_kept.anomalous_mask.sum())
            > int(inter_kept.anomalous_mask.sum())
        )
