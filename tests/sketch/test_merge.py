"""Merge-compatibility guards and wire-document validation.

Merging sketches with mismatched geometry or hash streams would add
counts of unrelated cells - silently fabricating traffic - so every
mismatch must be refused with a typed :class:`SketchError` before any
state changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SketchError
from repro.sketch.cloning import CloneSet
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashing import HashFamily
from repro.sketch.histogram import HashedHistogram

VALUES = np.arange(50, dtype=np.uint64)


def make_sketch(width=64, depth=3, seed=0) -> CountMinSketch:
    sketch = CountMinSketch(width=width, depth=depth, seed=seed)
    sketch.update_array(VALUES)
    return sketch


def make_snapshot(bins=32, seed=0):
    histogram = HashedHistogram(HashFamily(bins=bins, seed=seed).take(1)[0])
    histogram.update(VALUES)
    return histogram.snapshot()


class TestCountMinGuards:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(width=128), dict(depth=4), dict(seed=1)],
        ids=["width", "depth", "seed"],
    )
    def test_mismatch_refused(self, kwargs):
        base = make_sketch()
        other = make_sketch(**kwargs)
        assert not base.compatible_with(other)
        before = base.to_dict()
        with pytest.raises(SketchError, match="different"):
            base.merge(other)
        # Refusal left the sketch untouched.
        assert base.to_dict() == before

    def test_compatible_merges(self):
        base = make_sketch()
        assert base.compatible_with(make_sketch())
        base.merge(make_sketch())
        assert base.total == 2 * len(VALUES)

    def test_from_dict_negative_total_refused(self):
        doc = make_sketch().to_dict()
        doc["total"] = -1
        with pytest.raises(SketchError, match="negative total"):
            CountMinSketch.from_dict(doc)

    def test_from_dict_wrong_cell_count_refused(self):
        doc = make_sketch().to_dict()
        doc["depth"] = doc["depth"] + 1
        with pytest.raises(SketchError, match="cells"):
            CountMinSketch.from_dict(doc)

    def test_from_dict_missing_field_refused(self):
        doc = make_sketch().to_dict()
        del doc["table"]
        with pytest.raises(SketchError, match="malformed"):
            CountMinSketch.from_dict(doc)


class TestSnapshotGuards:
    def test_different_hash_refused(self):
        with pytest.raises(SketchError, match="different hash"):
            make_snapshot(seed=0).merge(make_snapshot(seed=1))

    def test_different_bins_refused(self):
        with pytest.raises(SketchError, match="different hash"):
            make_snapshot(bins=32).merge(make_snapshot(bins=64))

    def test_from_dict_counts_length_refused(self):
        doc = make_snapshot().to_dict()
        doc["hash"]["bins"] = doc["hash"]["bins"] * 2
        with pytest.raises(SketchError, match="expected"):
            type(make_snapshot()).from_dict(doc)

    def test_from_dict_missing_field_refused(self):
        doc = make_snapshot().to_dict()
        del doc["counts"]
        with pytest.raises(SketchError, match="malformed"):
            type(make_snapshot()).from_dict(doc)

    def test_restore_wrong_bins_refused(self):
        histogram = HashedHistogram(
            HashFamily(bins=32, seed=0).take(1)[0]
        )
        with pytest.raises(SketchError, match="bins"):
            histogram.restore(
                np.zeros(16), np.empty(0, dtype=np.uint64)
            )


class TestCloneSetGuards:
    def test_from_dict_wrong_clone_count_refused(self):
        clone_set = CloneSet(3, 32, seed=0)
        clone_set.update(VALUES)
        doc = clone_set.to_dict()
        doc["histograms"] = doc["histograms"][:-1]
        with pytest.raises(SketchError, match="clones"):
            CloneSet.from_dict(doc)

    def test_from_dict_malformed_refused(self):
        with pytest.raises(SketchError, match="malformed"):
            CloneSet.from_dict({"clones": 2})

    def test_from_dict_malformed_histogram_refused(self):
        clone_set = CloneSet(2, 32, seed=0)
        doc = clone_set.to_dict()
        doc["histograms"][0] = {"counts": "!!not-packed!!"}
        with pytest.raises(SketchError, match="malformed"):
            CloneSet.from_dict(doc)
