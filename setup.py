"""Legacy setup shim.

Kept so ``pip install -e .`` works on minimal offline environments where
the ``wheel`` package (required by PEP 660 editable builds on older
setuptools) is unavailable.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
