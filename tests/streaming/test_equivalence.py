"""Batch/stream equivalence: the streaming pipeline must reproduce the
batch `run_trace` output byte for byte on the same trace (ISSUE 2
acceptance criterion)."""

import numpy as np
import pytest

from repro.core.config import ExtractionConfig
from repro.core.pipeline import AnomalyExtractor
from repro.core.session import run_session
from repro.detection.detector import DetectorConfig
from repro.flows.io import iter_csv, write_csv
from repro.streaming import StreamingExtractor

CHUNK_ROWS = 517  # deliberately misaligned with interval boundaries


def _config(**overrides):
    return ExtractionConfig(
        detector=DetectorConfig(
            clones=3, bins=256, vote_threshold=3, training_intervals=16
        ),
        min_support=300,
        **overrides,
    )


def _chunked(table, rows):
    for lo in range(0, len(table), rows):
        yield table.select(np.arange(lo, min(lo + rows, len(table))))


def _rendered(extractions):
    return "\n\n".join(e.render() for e in extractions)


@pytest.fixture(scope="module")
def batch(ddos_trace):
    with AnomalyExtractor(_config(), seed=1) as extractor:
        return extractor.run_trace(
            ddos_trace.flows, ddos_trace.interval_seconds
        )


@pytest.fixture(scope="module")
def streamed(ddos_trace):
    with AnomalyExtractor(_config(), seed=1) as extractor:
        return extractor.run_stream(
            _chunked(ddos_trace.flows, CHUNK_ROWS),
            ddos_trace.interval_seconds,
        )


class TestRunStreamEquivalence:
    def test_reports_byte_identical(self, batch, streamed):
        assert _rendered(streamed.extractions) == _rendered(batch.extractions)
        assert streamed.flagged_intervals == batch.flagged_intervals
        assert streamed.flagged_intervals  # the DDoS was actually caught

    def test_detection_run_identical(self, batch, streamed):
        assert streamed.detection.n_intervals == batch.detection.n_intervals
        assert (
            streamed.detection.alarm_intervals()
            == batch.detection.alarm_intervals()
        )
        for feature in batch.detection.features:
            assert np.array_equal(
                streamed.detection.kl_series(feature),
                batch.detection.kl_series(feature),
            )

    def test_prefilter_and_mining_fields_identical(self, batch, streamed):
        for got, want in zip(streamed.extractions, batch.extractions):
            assert got.prefilter.flows == want.prefilter.flows
            assert got.mining.all_frequent == want.mining.all_frequent
            assert got.mining.min_support == want.mining.min_support


class TestCsvStreamEquivalence:
    def test_csv_chunked_stream_identical(
        self, tmp_path_factory, ddos_trace, batch
    ):
        path = tmp_path_factory.mktemp("stream") / "trace.csv"
        write_csv(ddos_trace.flows, path)
        with StreamingExtractor(
            _config(),
            seed=1,
            interval_seconds=ddos_trace.interval_seconds,
        ) as streamer:
            result = run_session(
                streamer.session, iter_csv(path, chunk_rows=777)
            )
        assert result.late_dropped == 0
        assert result.flows == len(ddos_trace.flows)
        assert _rendered(result.extractions) == _rendered(batch.extractions)


class TestLateDropAccounting:
    def test_run_stream_surfaces_late_drops(self, ddos_trace, rng):
        """A stream reordered beyond the lateness allowance must not
        pretend to equal the batch result: the dropped flows are
        counted on the returned TraceExtraction."""
        order = rng.permutation(len(ddos_trace.flows))
        shuffled = ddos_trace.flows.select(order)
        with AnomalyExtractor(_config(), seed=1) as extractor:
            result = extractor.run_stream(
                _chunked(shuffled, CHUNK_ROWS), ddos_trace.interval_seconds
            )
        assert result.late_dropped > 0

    def test_batch_path_reports_zero_late_drops(self, batch):
        assert batch.late_dropped == 0

    def test_in_order_stream_reports_zero_late_drops(self, streamed):
        assert streamed.late_dropped == 0


class TestOutOfOrderEquivalence:
    def test_shuffled_stream_matches_batch_on_shuffled_trace(
        self, ddos_trace, rng
    ):
        """With enough lateness allowance, an arbitrarily reordered
        stream still reproduces the batch result for the same (equally
        reordered) trace."""
        order = rng.permutation(len(ddos_trace.flows))
        shuffled = ddos_trace.flows.select(order)
        with AnomalyExtractor(_config(), seed=1) as extractor:
            want = extractor.run_trace(
                shuffled, ddos_trace.interval_seconds
            )
        with AnomalyExtractor(
            _config(max_delay_seconds=1e9), seed=1
        ) as extractor:
            got = extractor.run_stream(
                _chunked(shuffled, CHUNK_ROWS), ddos_trace.interval_seconds
            )
        assert _rendered(got.extractions) == _rendered(want.extractions)
        assert got.flagged_intervals == want.flagged_intervals
