"""``repro-extract serve`` - the long-running extraction daemon.

Wraps a :class:`~repro.fleet.manager.FleetManager` in the stdlib-only
HTTP/TCP service (:mod:`repro.service`): ``POST /ingest`` and the
optional TCP line socket feed the fleet, ``GET /incidents`` serves the
merged ranking, ``GET /metrics`` the Prometheus export, and
``GET /healthz`` the per-pipeline assembler posture.  With
``checkpoint_path`` configured the daemon periodically persists the
whole fleet's resume state; after a crash, ``--resume`` continues the
run mid-stream without re-ingesting (clients replay from the
``checkpointed_sequence`` the resumed daemon reports).  With
``[federation]`` sites configured the daemon is also a federator:
``POST /digest`` accepts per-site interval digests, and the federation
state rides along in the checkpoints.
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.cli._common import (
    TrackedTrueAction,
    add_config_arg,
    add_detector_args,
    add_mining_args,
    add_parallel_args,
    config_file_sets,
    explicit_dests,
    extraction_config,
    positive_int,
)
from repro.core.config import (
    FederationSettings,
    FleetSettings,
    ServiceSettings,
    split_run_data,
)
from repro.errors import ConfigError
from repro.fleet import FleetManager
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: Routing spec used when neither ``--route`` nor the run config names
#: one (mirrors the ``fleet`` subcommand).
DEFAULT_ROUTE_COLUMN = "dst_ip"


def add_parser(sub: argparse._SubParsersAction) -> None:
    serve = sub.add_parser(
        "serve",
        help="run the extraction daemon: HTTP/TCP ingest, incident "
        "queries, Prometheus metrics, durable checkpoint resume",
    )
    add_config_arg(serve)
    add_detector_args(serve)
    add_mining_args(serve)
    add_parallel_args(serve)
    serve.add_argument("--resume", default=False, action="store_true",
                       help="restore the fleet from the configured "
                       "checkpoint file and continue that run "
                       "mid-stream (cold start when no checkpoint "
                       "exists yet)")
    serve.add_argument("--host", default=None,
                       help="bind address (default from [service] "
                       "host, else 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="HTTP port (0 = ephemeral; default from "
                       "[service] port, else 8181)")
    serve.add_argument("--ingest-port", type=int, default=None,
                       help="enable the TCP line-ingest socket on this "
                       "port (each line one header-less CSV flow row)")
    serve.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="durable checkpoint file (overrides "
                       "[service] checkpoint_path)")
    serve.add_argument("--checkpoint-every", type=positive_int,
                       default=None, metavar="N",
                       help="checkpoint every N accepted ingest "
                       "batches (overrides [service] "
                       "checkpoint_every)")
    serve.add_argument("--checkpoint-sync", default=None,
                       action="store_true",
                       help="fsync every checkpoint write (power-loss "
                       "durability; kill-safe resume needs only the "
                       "default atomic rename)")
    serve.add_argument("--origin", type=float, default=0.0,
                       help="timestamp of interval 0")
    serve.add_argument("--pipelines", type=positive_int, default=None,
                       metavar="N",
                       help="run N generated pipelines (link0..linkN-1) "
                       "on the base config; mutually exclusive with "
                       "[fleet.pipelines.<name>] sections in --config")
    serve.add_argument("--route", default=None, metavar="SPEC",
                       help="routing spec: a flow column ('dst_ip'), a "
                       "'column%%N' shard, or a registered router "
                       f"(default: {DEFAULT_ROUTE_COLUMN} hash-sharded "
                       "over the pipelines)")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="directory of per-pipeline incident stores "
                       "(required for checkpointing: durable resume "
                       "needs durable stores)")
    serve.add_argument("--keep-extractions", default=False,
                       action=TrackedTrueAction,
                       help="retain every extraction result in memory "
                       "for the whole daemon lifetime (the library "
                       "default; the service reads stores and "
                       "counters, so long-lived daemons run flat "
                       "without it)")
    serve.set_defaults(func=run)


def run(args: argparse.Namespace) -> int:
    fleet_data = None
    service_data = None
    federation_data = None
    file_data = None
    if args.config:
        fleet_data, service_data, federation_data, file_data = (
            split_run_data(args.config)
        )
    base = extraction_config(args, file_data=file_data)
    try:
        fleet_settings = FleetSettings.from_data(fleet_data, base)
        settings = ServiceSettings.from_data(service_data)
        federation_settings = FederationSettings.from_data(federation_data)
    except ConfigError as exc:
        raise ConfigError(f"{args.config}: {exc}") from exc
    overrides: dict[str, object] = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.ingest_port is not None:
        overrides["ingest_port"] = args.ingest_port
    if args.checkpoint is not None:
        overrides["checkpoint_path"] = args.checkpoint
    if args.checkpoint_every is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if args.checkpoint_sync is not None:
        overrides["checkpoint_sync"] = args.checkpoint_sync
    if overrides:
        settings = dataclasses.replace(settings, **overrides)
    route = args.route if args.route is not None else fleet_settings.route
    if route is None:
        route = DEFAULT_ROUTE_COLUMN
    store_dir = (
        args.store_dir
        if args.store_dir is not None
        else fleet_settings.store_dir
    )
    configs = fleet_settings.pipeline_configs()
    if args.pipelines is not None:
        if configs:
            raise ConfigError(
                "both --pipelines and [fleet.pipelines.<name>] sections "
                "given; configure the fleet in one place"
            )
        configs = {f"link{i}": base for i in range(args.pipelines)}
    if not configs:
        # A daemon without explicit pipelines watches one link.
        configs = {"link0": base}
    if (
        "keep_extractions" not in explicit_dests(args)
        and not config_file_sets(args, "streaming", "keep_extractions")
    ):
        # The daemon's weak default, mirroring stream/fleet: it serves
        # stores and counters, never the in-memory extraction list, so
        # retention would only grow for the lifetime of the process.
        configs = {
            name: config.replace(keep_extractions=False)
            for name, config in configs.items()
        }
    # The daemon always runs a live registry: /metrics is part of its
    # contract, not an opt-in export.
    registry = MetricsRegistry(buckets=base.obs.histogram_buckets)
    tracer = Tracer() if base.obs.trace_path is not None else None
    from repro.service.supervisor import run_service

    federator = None
    federation_store = None
    if federation_settings.configured:
        from repro.federation.federator import Federator
        from repro.federation.tier import federation_kwargs

        if federation_settings.store_path is not None:
            from repro.incidents.store import open_store

            federation_store = open_store(federation_settings.store_path)
        federator = Federator(
            sites=federation_settings.sites,
            config=base.detector,
            features=base.features,
            seed=args.seed,
            interval_seconds=args.interval_seconds,
            origin=args.origin,
            store=federation_store,
            metrics=registry,
            tracer=tracer,
            **federation_kwargs(federation_settings),
        )
    try:
        with FleetManager(
            configs,
            route=route,
            interval_seconds=args.interval_seconds,
            origin=args.origin,
            seed=args.seed,
            store_dir=store_dir,
            metrics=registry,
            tracer=tracer,
        ) as fleet:
            run_service(
                fleet, settings, resume=args.resume, federator=federator
            )
    finally:
        if federation_store is not None:
            federation_store.close()
    return 0
