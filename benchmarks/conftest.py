"""Shared fixtures and reporting for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper.  Results are
accumulated through the ``report`` fixture and printed in the terminal
summary, so ``pytest benchmarks/ --benchmark-only`` shows the
paper-vs-measured rows next to the timing table.
"""

from __future__ import annotations

import pytest

from repro.detection.detector import DetectorConfig
from repro.detection.manager import DetectorBank
from repro.traffic.scenarios import two_week_trace

#: Scale notes shown next to every result.
TWO_WEEK_FLOWS_PER_INTERVAL = 1500
TWO_WEEK_EVENT_SCALE = 0.02

_collected: list[str] = []


@pytest.fixture(scope="session")
def report():
    """Append lines to the end-of-run reproduction report."""

    def emit(*lines: str) -> None:
        _collected.extend(lines)

    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _collected:
        terminalreporter.write_sep("=", "paper reproduction results")
        for line in _collected:
            terminalreporter.write_line(line)


#: Paper minimum supports 3000..10000 scaled by the event scale (0.02).
SUPPORT_GRID = {60: 3000, 100: 5000, 140: 7000, 200: 10_000}


@pytest.fixture(scope="session")
def extraction_sweep(two_week):
    """Offline extraction of every anomalous interval at each support.

    Returns {support: [(interval, n_flows, itemsets, score), ...]} where
    ``score`` is the ground-truth judgement - the raw material of
    Fig. 9 (FP item-sets) and Fig. 10 (cost reduction).
    """
    from repro.analysis.metrics import judge_itemsets
    from repro.core.prefilter import prefilter
    from repro.flows.stream import interval_of
    from repro.mining.apriori import apriori
    from repro.mining.transactions import TransactionSet

    trace = two_week["trace"]
    run = two_week["run"]
    sweep = {support: [] for support in SUPPORT_GRID}
    for idx in sorted(trace.anomalous_intervals()):
        metadata = run.report(idx).metadata()
        if metadata.is_empty():
            continue
        interval = interval_of(trace.flows, idx, 900.0, origin=0.0)
        selected = prefilter(interval.flows, metadata, "union")
        transactions = TransactionSet.from_flows(selected.flows)
        for support in SUPPORT_GRID:
            result = apriori(transactions, support)
            score = judge_itemsets(result.itemsets, interval.flows)
            sweep[support].append(
                (idx, len(interval.flows), result.itemsets, score)
            )
    return sweep


@pytest.fixture(scope="session")
def two_week():
    """The Table IV / Fig. 6 / Fig. 9 / Fig. 10 workload.

    Two weeks of 15-minute intervals (1344), 36 events in 31 distinct
    anomalous intervals, flow volumes scaled ~1/15000 from the SWITCH
    link (1500 baseline flows per interval, event sizes at 2% of the
    paper's).  Detection runs once; all benches share the result.
    """
    trace = two_week_trace(
        flows_per_interval=TWO_WEEK_FLOWS_PER_INTERVAL,
        scale=TWO_WEEK_EVENT_SCALE,
        seed=7,
    )
    config = DetectorConfig(
        clones=3, bins=1024, vote_threshold=3, training_intervals=96
    )
    bank = DetectorBank(config, seed=1)
    run = bank.run(trace.flows, trace.interval_seconds, origin=0.0)
    return {"trace": trace, "run": run, "config": config}
