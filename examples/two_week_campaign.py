#!/usr/bin/env python3
"""The full Table IV campaign: two weeks, 36 events, seven classes.

Regenerates the paper's evaluation workload end to end - a two-week
trace with the Table IV event mix in 31 distinct anomalous intervals -
runs the online pipeline over all 1344 intervals, and prints a per-class
detection/extraction scorecard.

This is the heaviest example (~60 s); it is the code path behind
benchmarks/bench_table4_anomaly_census.py, bench_fig9 and bench_fig10.

Run:
    python examples/two_week_campaign.py
"""

from collections import defaultdict

from repro.analysis import judge_itemsets
from repro.core import AnomalyExtractor, ExtractionConfig
from repro.detection import DetectorConfig
from repro.flows import interval_of
from repro.traffic import two_week_trace


def main() -> None:
    trace = two_week_trace(flows_per_interval=1500, scale=0.02, seed=7)
    truth = trace.anomalous_intervals()
    print(
        f"two-week trace: {len(trace.flows)} flows, "
        f"{trace.n_intervals} intervals, {len(trace.events)} events in "
        f"{len(truth)} anomalous intervals"
    )

    config = ExtractionConfig(
        detector=DetectorConfig(
            clones=3, bins=1024, vote_threshold=3, training_intervals=96
        ),
        min_support=100,
    )
    extractor = AnomalyExtractor(config, seed=1)
    result = extractor.run_trace(trace.flows, trace.interval_seconds)

    flagged = set(result.flagged_intervals)
    print(
        f"online pipeline: {len(flagged)} intervals flagged; "
        f"{len(flagged & truth)}/{len(truth)} anomalous intervals hit, "
        f"{len(flagged - truth)} extra alarms"
    )

    # Per-class scorecard: was each event covered by the extraction of
    # its interval?
    covered_by_class: dict[str, list[bool]] = defaultdict(list)
    fp_counts = []
    for extraction in result.extractions:
        idx = extraction.interval
        if idx not in truth:
            continue
        interval = interval_of(trace.flows, idx, 900.0, origin=0.0)
        score = judge_itemsets(extraction.itemsets, interval.flows)
        fp_counts.append(score.false_positives)
        for event in trace.events_in_interval(idx):
            covered_by_class[event.kind].append(
                event.event_id in score.events_covered
            )

    print("\nper-class extraction scorecard (min support 100):")
    for kind in sorted(covered_by_class):
        outcomes = covered_by_class[kind]
        print(
            f"  {kind:20s} {sum(outcomes):2d}/{len(outcomes):2d} "
            "events extracted"
        )
    if fp_counts:
        print(
            f"\nfalse-positive item-sets per flagged interval: "
            f"avg {sum(fp_counts) / len(fp_counts):.1f}, "
            f"max {max(fp_counts)} "
            "(paper: avg 2-8.5 over the support range)"
        )


if __name__ == "__main__":
    main()
