"""Table III: parameters of the approach, their ranges, our defaults.

Documentation table plus a benchmark of full pipeline construction (the
cost of standing up 5 detectors x 3 clones x 1024 bins, which the paper
sizes at 472 kB of histogram memory).
"""

from repro.core.config import TABLE3_PARAMETERS, ExtractionConfig
from repro.core.pipeline import AnomalyExtractor


def _build():
    return AnomalyExtractor(ExtractionConfig(), seed=0)


def test_table3_parameters(benchmark, report):
    extractor = benchmark(_build)

    report("", "Table III - parameters (paper range vs repro default)")
    for row in TABLE3_PARAMETERS:
        report(
            f"  {row.symbol:8s} {row.description}: "
            f"paper {row.paper_range}; repro {row.repro_default}"
        )
    config = extractor.config
    histogram_bytes = (
        len(config.features) * config.detector.clones
        * config.detector.bins * 8
    )
    report(
        f"  histogram memory: {len(config.features)} detectors x "
        f"{config.detector.clones} clones x {config.detector.bins} bins "
        f"x 8 B = {histogram_bytes / 1024:.0f} kB "
        "(paper: 472 kB for counters + value maps)"
    )
    assert histogram_bytes // 1024 == 120
    assert len(config.features) == 5
