"""Evaluation analytics: voting model, ROC curves, ground-truth scoring."""

from repro.analysis.metrics import (
    DEFAULT_ANOMALOUS_FRACTION,
    ExtractionScore,
    ItemsetJudgement,
    flow_recall,
    judge_itemsets,
)
from repro.analysis.roc import RocPoint, auc, operating_point, roc_curve
from repro.analysis.voting_model import (
    binomial_tail,
    expected_normal_values,
    fig7_grid,
    fig8_grid,
    p_anomalous_included,
    p_anomalous_missed,
    p_normal_included,
    simulate_anomalous_miss,
    simulate_normal_inclusion,
)

__all__ = [
    "DEFAULT_ANOMALOUS_FRACTION",
    "ExtractionScore",
    "ItemsetJudgement",
    "flow_recall",
    "judge_itemsets",
    "RocPoint",
    "auc",
    "operating_point",
    "roc_curve",
    "binomial_tail",
    "expected_normal_values",
    "fig7_grid",
    "fig8_grid",
    "p_anomalous_included",
    "p_anomalous_missed",
    "p_normal_included",
    "simulate_anomalous_miss",
    "simulate_normal_inclusion",
]
