"""Multi-pipeline fleet execution (`repro.fleet`).

The paper's Fig. 3 pipeline is defined per monitored link; this package
runs N of them as one service: a :class:`FleetManager` owns one named
:class:`~repro.core.session.ExtractionSession` per link, routes records
by a key column / shard spec / registered router
(:mod:`repro.fleet.routing`, pluggable via
:data:`repro.registry.routers`), shares one
:class:`~repro.parallel.engine.ParallelEngine` worker pool across every
pipeline, keeps per-pipeline incident stores, and merges + re-ranks
incidents fleet-wide.

Entry points: :func:`repro.api.open_fleet`, the ``repro-extract fleet``
CLI subcommand, and declarative ``[fleet]`` / ``[fleet.pipelines.<name>]``
TOML sections (:class:`repro.core.config.FleetSettings`).
"""

from repro.fleet.manager import FleetIncident, FleetManager
from repro.fleet.routing import Router, RouterFactory, hash_router, resolve_route

__all__ = [
    "FleetIncident",
    "FleetManager",
    "Router",
    "RouterFactory",
    "hash_router",
    "resolve_route",
]
