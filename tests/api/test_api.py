"""Tests for the stable `repro.api` facade."""

import pytest

import repro.api as api
from repro.registry import miners

_DETECTOR = {"bins": 256, "training_intervals": 16}


def toy_miner(transactions, min_support, maximal_only=True, **kwargs):
    from repro.mining import apriori

    return apriori(transactions, min_support, maximal_only=maximal_only)


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory, ddos_trace):
    from repro.flows import write_csv, write_npz

    tmp = tmp_path_factory.mktemp("api")
    npz, csv = tmp / "t.npz", tmp / "t.csv"
    write_npz(ddos_trace.flows, str(npz))
    write_csv(ddos_trace.flows, str(csv))
    return str(npz), str(csv)


class TestExtract:
    def test_matches_pipeline_class(self, ddos_trace):
        from repro import AnomalyExtractor, ExtractionConfig

        config = ExtractionConfig(
            detector=_DETECTOR, min_support=300, features="paper"
        )
        with AnomalyExtractor(config, seed=1) as extractor:
            expected = extractor.run_trace(ddos_trace.flows, 900.0)
        got = api.extract(
            ddos_trace.flows,
            detector=_DETECTOR,
            min_support=300,
            seed=1,
            interval_seconds=900.0,
        )
        assert got.flagged_intervals == expected.flagged_intervals
        assert [e.render() for e in got.extractions] == [
            e.render() for e in expected.extractions
        ]

    def test_accepts_paths_via_reader_registry(self, trace_files):
        npz, csv = trace_files
        from_npz = api.extract(
            npz, detector=_DETECTOR, min_support=300, seed=1,
            interval_seconds=900.0,
        )
        from_csv = api.extract(
            csv, detector=_DETECTOR, min_support=300, seed=1,
            interval_seconds=900.0,
        )
        assert from_npz.flagged_intervals == from_csv.flagged_intervals
        assert 24 in from_npz.flagged_intervals

    def test_config_file_plus_overrides(self, trace_files, tmp_path):
        npz, _ = trace_files
        run = tmp_path / "run.toml"
        run.write_text(
            "[detector]\nbins = 256\ntraining_intervals = 16\n"
            "[mining]\nmin_support = 300\n"
        )
        base = api.extract(npz, config=str(run), seed=1,
                           interval_seconds=900.0)
        assert 24 in base.flagged_intervals
        # Flat overrides act like explicit CLI flags over the file.
        tightened = api.extract(
            npz, config=str(run), min_support=10_000, seed=1,
            interval_seconds=900.0,
        )
        for extraction in tightened.extractions:
            assert extraction.mining.min_support == 10_000

    def test_third_party_miner_no_internal_edits(self, ddos_trace):
        miners.register("toy-api-test", toy_miner)
        try:
            expected = api.extract(
                ddos_trace.flows, detector=_DETECTOR, min_support=300,
                seed=1, interval_seconds=900.0,
            )
            got = api.extract(
                ddos_trace.flows, detector=_DETECTOR, min_support=300,
                seed=1, interval_seconds=900.0, miner="toy-api-test",
            )
            assert [e.render() for e in got.extractions] == [
                e.render() for e in expected.extractions
            ]
        finally:
            miners.unregister("toy-api-test")

    def test_bad_config_type(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="config must be"):
            api.resolve_config(42)


class TestStream:
    def test_stream_matches_extract(self, trace_files, ddos_trace):
        _, csv = trace_files
        batch = api.extract(
            ddos_trace.flows, detector=_DETECTOR, min_support=300,
            seed=1, interval_seconds=900.0,
        )
        streamed = api.stream(
            csv, detector=_DETECTOR, min_support=300, seed=1,
            interval_seconds=900.0, chunk_rows=700,
        )
        assert streamed.flagged_intervals == batch.flagged_intervals
        assert streamed.extraction_count == len(batch.extractions)
        assert streamed.late_dropped == 0

    def test_stream_rejects_non_csv_paths(self, trace_files):
        from repro.errors import TraceFormatError

        npz, _ = trace_files
        with pytest.raises(TraceFormatError, match="reads a .csv"):
            api.stream(npz)

    def test_stream_accepts_chunk_iterables(self, ddos_trace):
        chunks = [ddos_trace.flows]
        result = api.stream(
            chunks, detector=_DETECTOR, min_support=300, seed=1,
            interval_seconds=900.0,
        )
        assert 24 in result.flagged_intervals


class TestStoreAndRank:
    def test_extract_store_rank_workflow(self, trace_files, tmp_path):
        npz, _ = trace_files
        db = str(tmp_path / "incidents.db")
        api.extract(
            npz, detector=_DETECTOR, min_support=300, seed=1,
            interval_seconds=900.0, store_path=db,
        )
        ranked = api.rank(db)
        assert ranked
        assert ranked[0].score >= ranked[-1].score
        top = api.rank(db, top=1)
        assert len(top) == 1

    def test_rank_accepts_open_store(self, trace_files, tmp_path):
        npz, _ = trace_files
        db = str(tmp_path / "incidents2.db")
        api.extract(
            npz, detector=_DETECTOR, min_support=300, seed=1,
            interval_seconds=900.0, store_path=db,
        )
        with api.open_store(db, must_exist=True) as store:
            assert api.rank(store)

    def test_open_store_missing(self, tmp_path):
        from repro.errors import IncidentError

        with pytest.raises(IncidentError):
            api.open_store(str(tmp_path / "nope.db"), must_exist=True)


class TestCuratedSurface:
    def test_stable_names_importable(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_registries_reachable(self):
        assert "apriori" in api.miners
        assert "paper" in api.feature_sets
        assert ".csv" in api.readers
        assert "memory" in api.sinks
