"""Unit tests for FP-Growth and Eclat, plus cross-miner consistency."""

import numpy as np
import pytest

from repro.errors import MiningError
from repro.flows.table import FlowTable
from repro.mining.apriori import apriori
from repro.mining.eclat import eclat
from repro.mining.fpgrowth import fpgrowth
from repro.mining.transactions import TransactionSet
from tests.mining.reference import brute_force_frequent


def _random_flows(n, seed, value_range=12):
    """Dense value collisions so multi-item patterns emerge."""
    rng = np.random.default_rng(seed)
    return FlowTable.from_arrays(
        src_ip=rng.integers(0, value_range, n),
        dst_ip=rng.integers(0, value_range, n),
        src_port=rng.integers(0, value_range, n),
        dst_port=rng.integers(0, value_range, n),
        protocol=rng.integers(0, 3, n),
        packets=rng.integers(1, 5, n),
        bytes_=rng.integers(40, 44, n),
    )


@pytest.fixture(scope="module", params=[0, 1, 2])
def dense_transactions(request):
    return TransactionSet.from_flows(_random_flows(120, seed=request.param))


class TestFpGrowth:
    def test_matches_brute_force(self, dense_transactions):
        result = fpgrowth(dense_transactions, min_support=15)
        assert result.all_frequent == brute_force_frequent(
            dense_transactions, 15
        )

    def test_empty_input(self):
        result = fpgrowth(TransactionSet.from_flows(FlowTable.empty()), 1)
        assert result.itemsets == []

    def test_validation(self, dense_transactions):
        with pytest.raises(MiningError):
            fpgrowth(dense_transactions, 0)

    def test_algorithm_tag(self, dense_transactions):
        assert fpgrowth(dense_transactions, 30).algorithm == "fpgrowth"


class TestEclat:
    def test_matches_brute_force(self, dense_transactions):
        result = eclat(dense_transactions, min_support=15)
        assert result.all_frequent == brute_force_frequent(
            dense_transactions, 15
        )

    def test_empty_input(self):
        result = eclat(TransactionSet.from_flows(FlowTable.empty()), 1)
        assert result.itemsets == []

    def test_validation(self, dense_transactions):
        with pytest.raises(MiningError):
            eclat(dense_transactions, 0)

    def test_algorithm_tag(self, dense_transactions):
        assert eclat(dense_transactions, 30).algorithm == "eclat"


class TestMinerConsistency:
    @pytest.mark.parametrize("min_support", [5, 15, 40, 80])
    def test_all_three_miners_agree(self, dense_transactions, min_support):
        a = apriori(dense_transactions, min_support)
        f = fpgrowth(dense_transactions, min_support)
        e = eclat(dense_transactions, min_support)
        assert a.all_frequent == f.all_frequent == e.all_frequent
        assert (
            {s.items: s.support for s in a.itemsets}
            == {s.items: s.support for s in f.itemsets}
            == {s.items: s.support for s in e.itemsets}
        )

    def test_agree_on_table2_scenario(self, table2_small):
        transactions = TransactionSet.from_flows(table2_small.flows)
        support = table2_small.min_support
        a = apriori(transactions, support)
        f = fpgrowth(transactions, support)
        e = eclat(transactions, support)
        assert a.all_frequent == f.all_frequent == e.all_frequent
