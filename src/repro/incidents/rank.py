"""HURRA-style ranking of correlated incidents.

Navarro & Rossi's HURRA observes that the operator win of automated
troubleshooting is *ranking*: put what matters on top and the "trivial
sorting out" the paper hand-waves disappears.  We score each incident
by four normalized components and a pluggable weight profile:

* **support mass** - log-scaled total flow support across the
  incident's lifetime (how much traffic it explains);
* **persistence** - in how many intervals it appeared (a flash crowd
  and a two-day campaign should not tie);
* **triage** - the admin heuristic of :mod:`repro.core.report`:
  suspicious item-sets outrank common-service/common-size ones;
* **votes** - detector agreement (how many of the per-feature
  histogram detectors alarmed when it was extracted).

Every component lies in [0, 1]; the score is the weighted mean, so it
is comparable across runs with the same profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log1p
from typing import Any, Iterable

from repro.errors import IncidentError
from repro.incidents.correlate import Incident

#: Score multiplier of an incident none of whose item-sets were
#: triaged suspicious (common-service / common-size only).
BENIGN_TRIAGE_SCORE = 0.25


@dataclass(frozen=True)
class WeightProfile:
    """Relative weights of the four ranking components."""

    name: str
    support_mass: float = 1.0
    persistence: float = 1.0
    triage: float = 1.0
    votes: float = 1.0

    def __post_init__(self) -> None:
        weights = (self.support_mass, self.persistence, self.triage,
                   self.votes)
        if any(w < 0 for w in weights):
            raise IncidentError(
                f"profile {self.name!r}: weights must be >= 0: {weights}"
            )
        if sum(weights) <= 0:
            raise IncidentError(
                f"profile {self.name!r}: at least one weight must be > 0"
            )

    @property
    def total(self) -> float:
        return (self.support_mass + self.persistence + self.triage
                + self.votes)


#: Built-in profiles; pass a :class:`WeightProfile` for custom weights.
PROFILES: dict[str, WeightProfile] = {
    "balanced": WeightProfile("balanced"),
    # Volume first: big floods to the top even if short-lived.
    "volume": WeightProfile("volume", support_mass=3.0),
    # Campaigns first: long-running low-volume events (scans, spam).
    "campaign": WeightProfile("campaign", persistence=3.0),
}


@dataclass(frozen=True)
class RankedIncident:
    """An incident with its score and per-component breakdown."""

    incident: Incident
    score: float
    components: dict[str, float]

    def to_dict(self) -> dict[str, Any]:
        data = self.incident.to_dict()
        data["score"] = self.score
        data["components"] = dict(self.components)
        return data

    def render(self) -> str:
        inc = self.incident
        return (
            f"#{inc.incident_id} score={self.score:.3f} [{inc.state}] "
            f"{{{inc.describe_key()}}} "
            f"intervals {inc.first_seen}..{inc.last_seen} "
            f"(seen {inc.intervals_seen}x), peak support "
            f"{inc.peak_support}, votes {inc.peak_votes}"
        )


def resolve_profile(profile: str | WeightProfile) -> WeightProfile:
    if isinstance(profile, WeightProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise IncidentError(
            f"unknown weight profile {profile!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None


def score_incident(
    incident: Incident,
    profile: str | WeightProfile = "balanced",
    max_total_support: int | None = None,
    max_intervals_seen: int | None = None,
    max_peak_votes: int | None = None,
) -> tuple[float, dict[str, float]]:
    """Score one incident; returns ``(score, components)``.

    The ``max_*`` arguments set the normalization context (the best
    values across the incident population); ``None`` normalizes the
    incident against itself, which pins that component to 1.  Votes
    normalize per-population like the other components - a run
    configured with a feature subset can still reach full
    detector-agreement score.
    """
    weights = resolve_profile(profile)
    max_support = max_total_support or incident.total_support
    max_seen = max_intervals_seen or incident.intervals_seen
    max_votes = max_peak_votes or incident.peak_votes
    components = {
        "support_mass": (
            log1p(incident.total_support) / log1p(max_support)
            if max_support > 0 else 0.0
        ),
        "persistence": (
            incident.intervals_seen / max_seen if max_seen > 0 else 0.0
        ),
        "triage": 1.0 if incident.suspicious else BENIGN_TRIAGE_SCORE,
        "votes": (
            incident.peak_votes / max_votes if max_votes > 0 else 0.0
        ),
    }
    score = (
        weights.support_mass * components["support_mass"]
        + weights.persistence * components["persistence"]
        + weights.triage * components["triage"]
        + weights.votes * components["votes"]
    ) / weights.total
    return score, components


def rank_incidents(
    incidents: Iterable[Incident],
    profile: str | WeightProfile = "balanced",
    top: int | None = None,
) -> list[RankedIncident]:
    """Rank a population of incidents, best first.

    Ties break deterministically on (earlier first_seen, key), so the
    ordering is reproducible across runs and platforms.
    """
    # Validate the profile even when there is nothing to rank - a
    # typo'd --profile must error, not silently print "no incidents".
    profile = resolve_profile(profile)
    population = list(incidents)
    if not population:
        return []
    max_support = max(i.total_support for i in population)
    max_seen = max(i.intervals_seen for i in population)
    max_votes = max(i.peak_votes for i in population)
    ranked = []
    for incident in population:
        score, components = score_incident(
            incident, profile,
            max_total_support=max_support,
            max_intervals_seen=max_seen,
            max_peak_votes=max_votes,
        )
        ranked.append(RankedIncident(
            incident=incident, score=score, components=components
        ))
    ranked.sort(
        key=lambda r: (
            -r.score, r.incident.first_seen, r.incident.key
        )
    )
    if top is not None:
        if top < 1:
            raise IncidentError(f"top must be >= 1: {top}")
        ranked = ranked[:top]
    return ranked
