"""Fixture: catalog violations silenced by noqa comments."""


def instrument(registry, metrics, get_name):
    uncatalogued = registry.counter("repro_bogus_total", "Nope.")  # repro: noqa[RPR002]
    wrong_kind = registry.gauge("repro_flows_processed_total", "Kind.")  # repro: noqa[RPR002]
    wrong_labels = registry.counter(  # repro: noqa[RPR002]
        "repro_assembler_late_dropped_total", "Labels.", ("pipeline",)
    )
    dynamic = registry.counter(get_name(), "Dynamic.")  # repro: noqa
    if metrics.enabled:  # repro: noqa[RPR002]
        return None
    return uncatalogued, wrong_kind, wrong_labels, dynamic
