"""Eclat miner (Zaki 2000, reference [35] of the paper).

Vertical depth-first mining: every item carries its tidset (sorted
transaction-id array); extending a prefix intersects tidsets.  Related
work the paper cites (Li & Deng) applies an Eclat variant to flow
traces, so the comparator belongs in the reproduction.  Output family is
identical to Apriori and FP-Growth (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MiningError
from repro.mining.items import FEATURE_SHIFT
from repro.mining.maximal import filter_maximal
from repro.mining.result import MiningResult, build_result
from repro.mining.transactions import TransactionSet


def _recurse(
    prefix: tuple[int, ...],
    candidates: list[tuple[int, np.ndarray]],
    min_support: int,
    out: dict[tuple[int, ...], int],
) -> None:
    """DFS over prefix extensions.

    ``candidates`` holds (item, tidset-under-prefix) pairs, ordered by
    increasing support - the classic heuristic keeping intermediate
    tidsets small.
    """
    for idx, (item, tids) in enumerate(candidates):
        new_prefix = tuple(sorted(prefix + (item,)))
        out[new_prefix] = len(tids)
        extensions: list[tuple[int, np.ndarray]] = []
        for other, other_tids in candidates[idx + 1:]:
            # Items of one feature are mutually exclusive per transaction.
            if (other >> FEATURE_SHIFT) == (item >> FEATURE_SHIFT):
                continue
            joined = np.intersect1d(tids, other_tids, assume_unique=True)
            if len(joined) >= min_support:
                extensions.append((other, joined))
        if extensions:
            extensions.sort(key=lambda pair: (len(pair[1]), pair[0]))
            _recurse(new_prefix, extensions, min_support, out)


def eclat(
    transactions: TransactionSet,
    min_support: int,
    maximal_only: bool = True,
) -> MiningResult:
    """Mine frequent item-sets with vertical DFS (Eclat)."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1: {min_support}")
    item_support = transactions.frequent_items(min_support)
    all_frequent: dict[tuple[int, ...], int] = {}
    if item_support:
        tidsets = transactions.tidsets(list(item_support))
        candidates = sorted(
            ((item, tidsets[item]) for item in item_support),
            key=lambda pair: (len(pair[1]), pair[0]),
        )
        _recurse((), candidates, min_support, all_frequent)
    maximal = filter_maximal(all_frequent)
    kept = maximal if maximal_only else all_frequent
    return build_result(
        algorithm="eclat",
        all_frequent=all_frequent,
        maximal=kept,
        n_transactions=len(transactions),
        min_support=min_support,
    )
