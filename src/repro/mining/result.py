"""Common result type shared by the three frequent item-set miners."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mining.items import FrequentItemset, itemsets_sorted


@dataclass(frozen=True, slots=True)
class LevelStats:
    """Per-level bookkeeping mirroring the Table II narrative.

    ``found`` frequent k-item-sets were discovered; ``kept`` of them
    survived maximal filtering (the rest were subsets of frequent
    (k+1)-item-sets).
    """

    size: int
    found: int
    kept: int

    @property
    def removed(self) -> int:
        return self.found - self.kept


@dataclass(frozen=True)
class MiningResult:
    """Output of a frequent item-set miner.

    Attributes:
        algorithm: "apriori", "fpgrowth", or "eclat".
        itemsets: the *maximal* frequent item-sets (the paper's modified
            output), in canonical report order.
        all_frequent: every frequent item-set with its support, keyed by
            the sorted tuple of encoded items (needed for rule
            derivation and cross-miner equivalence checks).
        level_stats: per-size found/kept counts.
        n_transactions: input size.
        min_support: the absolute support threshold used.
    """

    algorithm: str
    itemsets: list[FrequentItemset]
    all_frequent: dict[tuple[int, ...], int]
    level_stats: list[LevelStats]
    n_transactions: int
    min_support: int

    @property
    def max_size(self) -> int:
        """Largest frequent item-set size found (0 when none)."""
        return max((stats.size for stats in self.level_stats), default=0)

    def frequent_of_size(self, size: int) -> int:
        for stats in self.level_stats:
            if stats.size == size:
                return stats.found
        return 0

    def summary_lines(self) -> list[str]:
        """Human-readable mining summary (used by reports and the CLI)."""
        lines = [
            f"{self.algorithm}: {self.n_transactions} transactions, "
            f"min support {self.min_support}",
        ]
        for stats in self.level_stats:
            lines.append(
                f"  {stats.size}-item-sets: {stats.found} frequent, "
                f"{stats.removed} removed as non-maximal, {stats.kept} kept"
            )
        lines.append(f"  maximal item-sets: {len(self.itemsets)}")
        return lines


def build_result(
    algorithm: str,
    all_frequent: dict[tuple[int, ...], int],
    maximal: dict[tuple[int, ...], int],
    n_transactions: int,
    min_support: int,
) -> MiningResult:
    """Assemble a :class:`MiningResult` from frequency dictionaries."""
    sizes = sorted({len(items) for items in all_frequent})
    level_stats = [
        LevelStats(
            size=k,
            found=sum(1 for items in all_frequent if len(items) == k),
            kept=sum(1 for items in maximal if len(items) == k),
        )
        for k in sizes
    ]
    itemsets = itemsets_sorted(
        [
            FrequentItemset(items=items, support=support)
            for items, support in maximal.items()
        ]
    )
    return MiningResult(
        algorithm=algorithm,
        itemsets=itemsets,
        all_frequent=dict(all_frequent),
        level_stats=level_stats,
        n_transactions=n_transactions,
        min_support=min_support,
    )
