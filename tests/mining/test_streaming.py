"""Unit tests for the sliding-window miner."""

import numpy as np
import pytest

from repro.errors import MiningError
from repro.flows.table import FlowTable
from repro.mining.eclat import eclat
from repro.mining.streaming import SlidingWindowMiner
from repro.mining.transactions import TransactionSet


def _batch(dst_port, n=100, seed=0):
    rng = np.random.default_rng(seed)
    return FlowTable.from_arrays(
        src_ip=rng.integers(0, 2**31, n),
        dst_ip=rng.integers(0, 2**31, n),
        src_port=rng.integers(1024, 65536, n),
        dst_port=np.full(n, dst_port),
        protocol=[6] * n,
        packets=[1] * n,
        bytes_=[40] * n,
    )


class TestSlidingWindowMiner:
    def test_not_ready_until_window_full(self):
        miner = SlidingWindowMiner(window=3, min_support=10)
        miner.push(_batch(80))
        assert not miner.ready
        miner.push(_batch(80, seed=1))
        miner.push(_batch(80, seed=2))
        assert miner.ready

    def test_window_eviction(self):
        miner = SlidingWindowMiner(window=2, min_support=150)
        miner.push(_batch(7000, seed=0))  # the anomaly...
        miner.push(_batch(80, seed=1))
        miner.push(_batch(80, seed=2))    # ...slides out here
        result = miner.mine()
        ports = {
            s.as_dict().get(list(s.as_dict())[0])
            for s in result.itemsets
        }
        assert miner.flows_in_window == 200
        # Port 7000 no longer reaches support 150 inside the window.
        from repro.detection.features import Feature

        port_values = {
            s.as_dict().get(Feature.DST_PORT) for s in result.itemsets
        }
        assert 7000 not in port_values
        assert 80 in port_values

    def test_mine_matches_batch_concat(self):
        miner = SlidingWindowMiner(window=2, min_support=50)
        batches = [_batch(80, seed=0), _batch(443, seed=1)]
        for batch in batches:
            miner.push(batch)
        direct = eclat(
            TransactionSet.from_flows(FlowTable.concat(batches)), 50
        )
        assert miner.mine().all_frequent == direct.all_frequent

    def test_incremental_counts_survive_eviction(self):
        miner = SlidingWindowMiner(window=2, min_support=120)
        for seed in range(6):
            miner.push(_batch(80, seed=seed))
        # Window holds 200 flows of port 80.
        assert miner.frequent_item_count() > 0
        assert miner.flows_in_window == 200

    def test_screen_skips_quiet_windows(self):
        miner = SlidingWindowMiner(window=2, min_support=10_000)
        miner.push(_batch(80, seed=0))
        miner.push(_batch(80, seed=1))
        assert miner.frequent_item_count() == 0
        assert miner.mine_if_candidates() is None

    def test_screen_triggers_on_burst(self):
        miner = SlidingWindowMiner(window=2, min_support=150)
        miner.push(_batch(7000, seed=0))
        miner.push(_batch(7000, seed=1))
        result = miner.mine_if_candidates()
        assert result is not None
        assert result.itemsets

    def test_mine_before_push_rejected(self):
        miner = SlidingWindowMiner(window=2, min_support=10)
        with pytest.raises(MiningError):
            miner.mine()

    def test_validation(self):
        with pytest.raises(MiningError):
            SlidingWindowMiner(window=0, min_support=10)
        with pytest.raises(MiningError):
            SlidingWindowMiner(window=1, min_support=0)

    def test_maximal_only_forwarded_to_miner(self):
        batch = _batch(80)
        maximal = SlidingWindowMiner(window=1, min_support=50)
        everything = SlidingWindowMiner(
            window=1, min_support=50, maximal_only=False
        )
        maximal.push(batch)
        everything.push(batch)
        all_result = everything.mine()
        max_result = maximal.mine()
        assert all_result.all_frequent == max_result.all_frequent
        # Non-maximal subsets stay in the report when asked for.
        assert len(all_result.itemsets) > len(max_result.itemsets)

    def test_plain_two_argument_custom_miner_still_works(self):
        """The documented miner= extension point takes (transactions,
        min_support); the default maximal_only must not force a third
        keyword onto such callables."""
        calls = []

        def custom(transactions, min_support):
            calls.append(min_support)
            return eclat(transactions, min_support)

        miner = SlidingWindowMiner(window=1, min_support=50, miner=custom)
        miner.push(_batch(80))
        result = miner.mine()
        assert calls == [50]
        assert result.itemsets

    def test_two_argument_miner_cannot_claim_maximal_only_false(self):
        """A custom miner that cannot receive maximal_only must be
        rejected up front rather than silently ignoring the request
        (or blowing up at the first mine())."""

        def custom(transactions, min_support):
            return eclat(transactions, min_support)

        with pytest.raises(MiningError, match="maximal_only"):
            SlidingWindowMiner(
                window=1, min_support=50, miner=custom, maximal_only=False
            )
        # Kwarg-capable custom miners are still accepted.
        SlidingWindowMiner(
            window=1,
            min_support=50,
            miner=lambda tx, s, **kw: eclat(tx, s, **kw),
            maximal_only=False,
        )


class TestEvictionConsistency:
    """ISSUE 2 satellite: incremental counts must stay exact across
    arbitrarily many evictions, and the candidate screen must never
    skip a window whose full mining result is non-empty."""

    @staticmethod
    def _recount(batches):
        from collections import Counter

        counts: Counter[int] = Counter()
        for batch in batches:
            items, supports = (
                TransactionSet.from_flows(batch).item_supports()
            )
            for item, support in zip(items.tolist(), supports.tolist()):
                counts[item] += support
        return counts

    @pytest.mark.parametrize("window", [1, 2, 3])
    def test_counts_equal_recount_after_many_evictions(self, window):
        ports = [80, 443, 7000, 80, 25, 53, 80, 8080, 443, 7000]
        miner = SlidingWindowMiner(window=window, min_support=10)
        batches = []
        for i, port in enumerate(ports):
            batch = _batch(port, n=50 + 10 * i, seed=i)
            batches.append(batch)
            miner.push(batch)
            # Invariant holds after EVERY push, not only at the end.
            assert miner._item_counts == self._recount(batches[-window:])
        assert miner.batches == window
        assert miner.flows_in_window == sum(
            len(b) for b in batches[-window:]
        )

    def test_counts_with_empty_batches_interleaved(self):
        miner = SlidingWindowMiner(window=2, min_support=10)
        empty = _batch(80, n=1, seed=0).select(np.zeros(0, dtype=np.int64))
        sequence = [_batch(80, seed=1), empty, _batch(443, seed=2), empty]
        for i, batch in enumerate(sequence):
            miner.push(batch)
            assert miner._item_counts == self._recount(
                sequence[max(0, i - 1): i + 1]
            )

    @pytest.mark.parametrize("min_support", [5, 50, 150, 400])
    def test_screen_never_skips_nonempty_window(self, min_support):
        """mine_if_candidates may only return None when mine() itself
        would find nothing (any frequent item-set implies a frequent
        single item, which the screen counts exactly)."""
        miner = SlidingWindowMiner(window=2, min_support=min_support)
        for i, port in enumerate([80, 80, 7000, 443, 7000, 7000]):
            miner.push(_batch(port, seed=i))
            full = miner.mine()
            screened = miner.mine_if_candidates()
            if full.itemsets:
                assert screened is not None
                assert screened.all_frequent == full.all_frequent
            else:
                # The screen may still mine (single frequent items with
                # no item-sets is impossible here, but stay strict):
                # whenever it does skip, the full result must be empty.
                if screened is None:
                    assert not full.itemsets
