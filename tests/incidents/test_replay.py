"""Replay equivalence (ISSUE 3 acceptance criterion).

Reports persisted through the store must round-trip to objects equal -
and byte-for-byte JSON-identical - to the in-memory batch output, and a
recurring anomaly injected across 3+ intervals must correlate into
exactly one ranked (suspicious) incident in both batch and streaming
modes.
"""

import numpy as np
import pytest

from repro.anomalies import DDoSInjector, EventSchedule
from repro.core.config import ExtractionConfig
from repro.core.pipeline import AnomalyExtractor
from repro.core.report import ExtractionReport
from repro.core.session import run_session
from repro.detection.detector import DetectorConfig
from repro.detection.features import Feature
from repro.incidents import IncidentStore, correlate
from repro.mining.items import encode_item
from repro.traffic import TraceGenerator, small_test

#: The DDoS recurs in these intervals (bursts of the same attack).
BURST_INTERVALS = (20, 22, 24)
INTERVAL_SECONDS = 900.0
CHUNK_ROWS = 617  # misaligned with interval boundaries on purpose


def _config():
    return ExtractionConfig(
        detector=DetectorConfig(
            clones=3, bins=256, vote_threshold=3, training_intervals=16
        ),
        min_support=300,
    )


@pytest.fixture(scope="module")
def burst_trace():
    """30 intervals; one DDoS victim attacked in three bursts."""
    profile = small_test(1500)
    generator = TraceGenerator(profile, seed=3)
    schedule = EventSchedule()
    victim = profile.internal_base + 5
    for interval in BURST_INTERVALS:
        schedule.add_at_interval(
            DDoSInjector(victim_ip=victim, flows=1200, sources=250),
            interval,
            INTERVAL_SECONDS,
            duration=880.0,
        )
    trace = generator.generate(30, schedule=schedule)
    return trace, victim


def _chunked(table, rows):
    for lo in range(0, len(table), rows):
        yield table.select(np.arange(lo, min(lo + rows, len(table))))


@pytest.fixture(scope="module")
def batch(burst_trace):
    trace, _ = burst_trace
    store = IncidentStore(":memory:")
    with AnomalyExtractor(_config(), seed=1) as extractor:
        result = extractor.run_trace(
            trace.flows, INTERVAL_SECONDS, sink=store
        )
    return result, store


@pytest.fixture(scope="module")
def streamed(burst_trace):
    trace, _ = burst_trace
    store = IncidentStore(":memory:")
    with AnomalyExtractor(_config(), seed=1) as extractor:
        result = extractor.run_stream(
            _chunked(trace.flows, CHUNK_ROWS),
            INTERVAL_SECONDS,
            sink=store,
        )
    return result, store


class TestStoreReplayEquivalence:
    def test_batch_reports_round_trip_byte_for_byte(self, batch):
        result, store = batch
        in_memory = [
            ExtractionReport.from_result(e, INTERVAL_SECONDS)
            for e in result.extractions
        ]
        replayed = store.reports()
        assert replayed == in_memory
        assert [r.to_json() for r in replayed] == [
            r.to_json() for r in in_memory
        ]

    def test_stream_reports_round_trip_byte_for_byte(self, streamed):
        result, store = streamed
        in_memory = [
            ExtractionReport.from_result(e, INTERVAL_SECONDS)
            for e in result.extractions
        ]
        replayed = store.reports()
        assert replayed == in_memory
        assert [r.to_json() for r in replayed] == [
            r.to_json() for r in in_memory
        ]

    def test_batch_and_stream_stores_identical(self, batch, streamed):
        _, batch_store = batch
        _, stream_store = streamed
        assert [r.to_json() for r in batch_store.reports()] == [
            r.to_json() for r in stream_store.reports()
        ]


class TestWindowModeReports:
    def test_window_reports_span_the_mined_window(self, burst_trace):
        """Sliding-window extractions describe N intervals of traffic;
        the persisted bounds must cover all N, not just the triggering
        interval, or flow counts and (end - start) disagree."""
        from repro.streaming import StreamingExtractor

        trace, _ = burst_trace
        store = IncidentStore(":memory:")
        config = ExtractionConfig(
            detector=DetectorConfig(
                clones=3, bins=256, vote_threshold=3,
                training_intervals=16,
            ),
            min_support=300,
            window_intervals=3,
        )
        with StreamingExtractor(
            config, seed=1, interval_seconds=INTERVAL_SECONDS,
            sink=store,
        ) as streamer:
            result = run_session(
                streamer.session, _chunked(trace.flows, CHUNK_ROWS)
            )
            assert result.extractions
            for extraction in result.extractions:
                report = streamer.report_for(extraction)
                # Window is full by the time anything alarms (interval
                # >= 17 > window size 3).
                assert report.end - report.start == pytest.approx(
                    3 * INTERVAL_SECONDS
                )
                assert report.end == pytest.approx(
                    (extraction.interval + 1) * INTERVAL_SECONDS
                )
                assert report.input_flows == (
                    extraction.prefilter.input_flows
                )
        assert [r.to_json() for r in store.reports()] == [
            streamer.report_for(e).to_json() for e in result.extractions
        ]

    def test_report_for_rejects_foreign_extraction(self, burst_trace):
        from repro.errors import ExtractionError
        from repro.streaming import StreamingExtractor

        with StreamingExtractor(
            _config(), interval_seconds=INTERVAL_SECONDS
        ) as streamer:
            with pytest.raises(ExtractionError, match="unknown"):
                streamer.report_for(object())


class TestInterruptedRunGuard:
    def test_marker_advances_during_batch_run(self, burst_trace):
        """An interrupted batch run must leave the re-ingest guard
        armed for what it already stored - noting only at trace end
        would let a retry silently duplicate every stored report."""
        from repro.errors import IncidentError

        trace, _ = burst_trace
        store = IncidentStore(":memory:")

        class Boom(RuntimeError):
            pass

        class ExplodingSink:
            """Delegates to the store, dies on the second append."""

            def __init__(self, inner):
                self.inner = inner
                self.appended = 0

            def append(self, report):
                if self.appended >= 1:
                    raise Boom("interrupted mid-trace")
                self.appended += 1
                return self.inner.append(report)

            def note_interval(self, interval):
                self.inner.note_interval(interval)

        with AnomalyExtractor(_config(), seed=1) as extractor:
            with pytest.raises(Boom):
                extractor.run_trace(
                    trace.flows, INTERVAL_SECONDS,
                    sink=ExplodingSink(store),
                )
        assert store.last_interval() is not None
        assert store.last_interval() >= BURST_INTERVALS[0]
        with pytest.raises(IncidentError, match="duplicate"):
            store.append(store.reports()[0])


class TestLastIntervalNoted:
    def test_batch_and_stream_note_the_trace_end(self, batch, streamed):
        # 30 generated intervals -> both drivers processed 0..29, even
        # though only the burst intervals produced reports.
        for _, store in (batch, streamed):
            assert store.last_interval() == 29

    def test_ended_attack_reads_closed_not_active(self, batch):
        """The bursts stop at interval 24 and the trace runs clean to
        29; with quiet_gap=2 the incident must have aged to closed -
        deriving `now` from the last *report* would leave it active
        forever."""
        _, store = batch
        top = store.incidents(jaccard=0.5, quiet_gap=2)[0].incident
        assert top.last_seen == BURST_INTERVALS[-1]
        assert top.state == "closed"


class TestSingleIncidentCorrelation:
    def _suspicious_incidents(self, store):
        incidents = correlate(
            store.reports(), jaccard=0.5, quiet_gap=2
        )
        return incidents, [i for i in incidents if i.suspicious]

    def test_burst_intervals_all_extracted(self, batch):
        result, _ = batch
        assert set(BURST_INTERVALS) <= set(result.flagged_intervals)

    def test_batch_correlates_to_one_incident(self, batch, burst_trace):
        _, victim = burst_trace
        _, store = batch
        incidents, suspicious = self._suspicious_incidents(store)
        assert len(suspicious) == 1
        (incident,) = suspicious
        # The incident is the injected DDoS: it names the victim.
        assert encode_item(Feature.DST_IP, victim) in incident.items
        assert incident.first_seen == BURST_INTERVALS[0]
        assert incident.last_seen == BURST_INTERVALS[-1]
        assert incident.intervals_seen == len(BURST_INTERVALS)

    def test_stream_correlates_to_one_incident(self, streamed):
        _, store = streamed
        _, suspicious = self._suspicious_incidents(store)
        assert len(suspicious) == 1
        assert suspicious[0].intervals_seen == len(BURST_INTERVALS)

    def test_batch_and_stream_agree_on_the_incident(
        self, batch, streamed
    ):
        _, batch_store = batch
        _, stream_store = streamed
        (a,) = self._suspicious_incidents(batch_store)[1]
        (b,) = self._suspicious_incidents(stream_store)[1]
        assert a.items == b.items
        assert (a.first_seen, a.last_seen, a.intervals_seen) == (
            b.first_seen, b.last_seen, b.intervals_seen
        )
        assert a.total_support == b.total_support
        assert a.peak_support == b.peak_support

    def test_the_real_incident_ranks_first(self, batch):
        """Offset echoes (endpoint-free item-sets flagged when a burst
        stops) may open extra benign-looking incidents; ranking must put
        the real, suspicious, persistent one on top."""
        _, store = batch
        ranked = store.incidents(jaccard=0.5, quiet_gap=2)
        assert ranked
        top = ranked[0].incident
        assert top.suspicious
        assert top.intervals_seen == len(BURST_INTERVALS)
        for entry in ranked[1:]:
            assert entry.score <= ranked[0].score
