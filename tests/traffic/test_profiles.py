"""Unit tests for traffic profiles."""

import pytest

from repro.errors import ConfigError
from repro.flows.record import ip_to_int
from repro.traffic.profiles import TrafficProfile, small_test, switch_like


class TestProfiles:
    def test_switch_like_defaults(self):
        profile = switch_like()
        assert profile.flows_per_interval == 20_000
        assert profile.internal_base == ip_to_int("130.59.0.0")

    def test_switch_like_scaling(self):
        assert switch_like(500).flows_per_interval == 500

    def test_small_test_is_small(self):
        profile = small_test()
        assert profile.internal_hosts <= 1024
        assert profile.flows_per_interval <= 2000

    def test_icmp_share_is_remainder(self):
        profile = TrafficProfile(tcp_share=0.7, udp_share=0.2)
        assert profile.icmp_share == pytest.approx(0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(internal_hosts=1),
            dict(external_hosts=0),
            dict(service_port_share=0.0),
            dict(service_port_share=1.5),
            dict(tcp_share=0.9, udp_share=0.2),
            dict(tcp_share=-0.1),
            dict(ephemeral_range=(0, 1024)),
            dict(ephemeral_range=(2000, 1000)),
            dict(ephemeral_range=(1024, 70000)),
            dict(flows_per_interval=0),
            dict(packets_tail_alpha=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TrafficProfile(**kwargs)

    def test_service_ports_dominated_by_port_80(self):
        profile = switch_like()
        ports = dict(profile.service_ports)
        assert ports[80] == max(ports.values())
