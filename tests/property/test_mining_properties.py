"""Property-based tests: the miners against first principles.

Hypothesis generates small random transaction sets; we assert that the
production miners agree with an obviously-correct brute-force reference
and with each other, and that the structural invariants of frequent
item-set families hold (anti-monotonicity, downward closure,
maximality).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.table import FlowTable
from repro.mining.apriori import apriori
from repro.mining.eclat import eclat
from repro.mining.fpgrowth import fpgrowth
from repro.mining.maximal import filter_maximal, is_maximal_in
from repro.mining.transactions import TransactionSet
from tests.mining.reference import brute_force_frequent, brute_force_maximal


@st.composite
def transaction_sets(draw):
    """Random small flow tables with dense value collisions."""
    n = draw(st.integers(min_value=1, max_value=30))
    cardinality = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    flows = FlowTable.from_arrays(
        src_ip=rng.integers(0, cardinality, n),
        dst_ip=rng.integers(0, cardinality, n),
        src_port=rng.integers(0, cardinality, n),
        dst_port=rng.integers(0, cardinality, n),
        protocol=rng.integers(0, cardinality, n),
        packets=rng.integers(1, cardinality + 1, n),
        bytes_=rng.integers(40, 40 + cardinality, n),
    )
    return TransactionSet.from_flows(flows)


support_strategy = st.integers(min_value=1, max_value=12)


@settings(max_examples=60, deadline=None)
@given(transactions=transaction_sets(), min_support=support_strategy)
def test_apriori_equals_brute_force(transactions, min_support):
    result = apriori(transactions, min_support)
    assert result.all_frequent == brute_force_frequent(
        transactions, min_support
    )


@settings(max_examples=60, deadline=None)
@given(transactions=transaction_sets(), min_support=support_strategy)
def test_three_miners_agree(transactions, min_support):
    a = apriori(transactions, min_support).all_frequent
    f = fpgrowth(transactions, min_support).all_frequent
    e = eclat(transactions, min_support).all_frequent
    assert a == f == e


@settings(max_examples=40, deadline=None)
@given(transactions=transaction_sets(), min_support=support_strategy)
def test_counting_backends_agree(transactions, min_support):
    vertical = apriori(transactions, min_support, counting="vertical")
    horizontal = apriori(transactions, min_support, counting="horizontal")
    assert vertical.all_frequent == horizontal.all_frequent


@settings(max_examples=60, deadline=None)
@given(transactions=transaction_sets(), min_support=support_strategy)
def test_supports_are_exact_and_antimonotone(transactions, min_support):
    frequent = apriori(transactions, min_support).all_frequent
    for items, support in frequent.items():
        assert support == transactions.support_of(items)
        assert support >= min_support
        if len(items) >= 2:
            for drop in range(len(items)):
                subset = items[:drop] + items[drop + 1:]
                assert subset in frequent  # downward closure
                assert frequent[subset] >= support  # anti-monotone


@settings(max_examples=60, deadline=None)
@given(transactions=transaction_sets(), min_support=support_strategy)
def test_maximal_filter_is_correct(transactions, min_support):
    frequent = apriori(transactions, min_support).all_frequent
    maximal = filter_maximal(frequent)
    assert maximal == brute_force_maximal(frequent)
    for items in frequent:
        assert (items in maximal) == is_maximal_in(items, frequent)


@settings(max_examples=40, deadline=None)
@given(transactions=transaction_sets(), min_support=support_strategy)
def test_every_frequent_itemset_is_subset_of_a_maximal_one(
    transactions, min_support
):
    result = apriori(transactions, min_support)
    maximal_sets = [set(s.items) for s in result.itemsets]
    for items in result.all_frequent:
        assert any(set(items) <= m for m in maximal_sets)


@settings(max_examples=40, deadline=None)
@given(
    transactions=transaction_sets(),
    low=st.integers(min_value=1, max_value=6),
    delta=st.integers(min_value=1, max_value=6),
)
def test_higher_support_yields_subset(transactions, low, delta):
    loose = apriori(transactions, low).all_frequent
    strict = apriori(transactions, low + delta).all_frequent
    assert set(strict) <= set(loose)
    for items, support in strict.items():
        assert loose[items] == support
