"""Round-trip and rejection tests for the declarative config."""

import json

import pytest

from repro.core import (
    ExtractionConfig,
    IncidentSettings,
    MiningSettings,
    ParallelSettings,
    StreamingSettings,
)
from repro.detection.detector import DetectorConfig
from repro.detection.features import Feature
from repro.errors import ConfigError


def canonical(config: ExtractionConfig) -> str:
    return json.dumps(config.to_dict(), sort_keys=True)


class TestConstruction:
    def test_flat_and_nested_spellings_equivalent(self):
        flat = ExtractionConfig(min_support=500, jobs=4, miner="eclat")
        nested = ExtractionConfig(
            mining=MiningSettings(min_support=500, miner="eclat"),
            parallel=ParallelSettings(jobs=4),
        )
        assert flat == nested

    def test_dict_groups_accepted(self):
        config = ExtractionConfig(
            mining={"min_support": 500},
            streaming={"window_intervals": 3},
            detector={"bins": 64},
        )
        assert config.min_support == 500
        assert config.window_intervals == 3
        assert config.detector.bins == 64

    def test_flat_kwargs_override_given_group(self):
        config = ExtractionConfig(
            mining=MiningSettings(min_support=500, miner="eclat"),
            min_support=900,
        )
        assert config.min_support == 900
        assert config.miner == "eclat"

    def test_unknown_flat_kwarg_with_hint(self):
        with pytest.raises(ConfigError, match="did you mean 'min_support'"):
            ExtractionConfig(min_supportt=5)

    def test_unknown_group_key_with_hint(self):
        with pytest.raises(ConfigError, match="did you mean 'miner'"):
            ExtractionConfig(mining={"minerr": "apriori"})

    def test_legacy_incident_names_still_map(self):
        config = ExtractionConfig(
            store_path="x.db", incident_jaccard=0.7, incident_quiet_gap=3
        )
        assert config.incidents == IncidentSettings(
            store_path="x.db", jaccard=0.7, quiet_gap=3
        )
        # ...and read back through the legacy flat properties.
        assert config.incident_jaccard == 0.7
        assert config.incident_quiet_gap == 3

    def test_features_by_set_name(self):
        config = ExtractionConfig(features="endpoints")
        assert Feature.SRC_IP in config.features
        assert Feature.PACKETS not in config.features

    def test_features_by_names(self):
        config = ExtractionConfig(features=["srcIP", "dst_port"])
        assert config.features == (Feature.SRC_IP, Feature.DST_PORT)

    def test_replace_flat_nested_and_groups(self):
        base = ExtractionConfig(min_support=100)
        derived = base.replace(
            jobs=2, streaming={"window_intervals": 4}
        )
        assert derived.min_support == 100
        assert derived.jobs == 2
        assert derived.window_intervals == 4
        # the original is untouched (frozen value semantics)
        assert base.jobs == 1

    def test_dataclasses_replace_still_works(self):
        import dataclasses

        base = ExtractionConfig(min_support=100)
        derived = dataclasses.replace(
            base, mining=MiningSettings(min_support=200)
        )
        assert derived.min_support == 200

    def test_keep_extractions_default_and_flat_access(self):
        assert ExtractionConfig().keep_extractions is True
        assert ExtractionConfig(
            keep_extractions=False
        ).streaming.keep_extractions is False

    def test_streaming_validation(self):
        with pytest.raises(ConfigError):
            ExtractionConfig(streaming=StreamingSettings(window_intervals=0))
        with pytest.raises(ConfigError):
            ExtractionConfig(max_delay_seconds=-1.0)


class TestDictRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            ExtractionConfig(),
            ExtractionConfig(
                detector=DetectorConfig(bins=64, training_intervals=4),
                features="endpoints",
                min_support=123,
                miner="fpgrowth",
                jobs=4,
                backend="process",
                partitions=8,
                window_intervals=3,
                max_delay_seconds=5.0,
                max_pending_intervals=10,
                keep_extractions=False,
                store_path="/tmp/x.db",
                incident_jaccard=0.75,
                incident_quiet_gap=4,
            ),
        ],
    )
    def test_to_dict_from_dict_byte_stable(self, config):
        once = config.to_dict()
        rebuilt = ExtractionConfig.from_dict(once)
        assert rebuilt == config
        twice = rebuilt.to_dict()
        assert json.dumps(once, sort_keys=True) == json.dumps(
            twice, sort_keys=True
        )

    def test_custom_features_refused_not_silently_mangled(self):
        from repro.detection.features import CustomFeature

        config = ExtractionConfig(
            features=[Feature.SRC_IP, CustomFeature("sub24", "dst_ip")]
        )
        with pytest.raises(ConfigError, match="cannot serialize"):
            config.to_dict()

    def test_none_knobs_omitted_for_toml_compat(self):
        data = ExtractionConfig().to_dict()
        for section in data.values():
            assert None not in section.values()

    def test_missing_sections_default(self):
        config = ExtractionConfig.from_dict({"mining": {"min_support": 9}})
        assert config.min_support == 9
        assert config == ExtractionConfig(min_support=9)

    def test_unknown_section_with_hint(self):
        with pytest.raises(ConfigError, match="did you mean 'mining'"):
            ExtractionConfig.from_dict({"minning": {}})

    def test_flat_key_at_top_level_redirects(self):
        with pytest.raises(
            ConfigError, match=r"did you mean \[incidents\] jaccard"
        ):
            ExtractionConfig.from_dict({"incident_jaccard": 0.5})

    def test_unknown_key_in_section_with_hint(self):
        with pytest.raises(ConfigError, match="did you mean 'min_support'"):
            ExtractionConfig.from_dict({"mining": {"min_suport": 10}})

    @pytest.mark.parametrize(
        "data, match",
        [
            ({"mining": {"min_support": "lots"}}, "must be int"),
            ({"mining": {"min_support": True}}, "must be int"),
            ({"streaming": {"keep_extractions": 1}}, "must be bool"),
            ({"parallel": {"backend": 7}}, "must be str"),
            ({"detector": {"multiplier": "big"}}, "must be float"),
            ({"mining": "nope"}, "table of keys"),
            ("nope", "mapping of sections"),
        ],
    )
    def test_bad_types_rejected(self, data, match):
        with pytest.raises(ConfigError, match=match):
            ExtractionConfig.from_dict(data)

    def test_int_accepted_for_float_fields(self):
        config = ExtractionConfig.from_dict(
            {"streaming": {"max_delay_seconds": 5}}
        )
        assert config.max_delay_seconds == 5.0
        assert isinstance(config.max_delay_seconds, float)

    def test_range_validation_still_applies(self):
        with pytest.raises(ConfigError, match="min_support"):
            ExtractionConfig.from_dict({"mining": {"min_support": 0}})


class TestTomlRoundTrip:
    def test_from_toml_equivalent_to_flag_built_config(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text(
            """
            [detector]
            bins = 64
            training_intervals = 4
            features = ["srcIP", "dstIP", "dstPort"]

            [mining]
            min_support = 123
            miner = "fpgrowth"

            [parallel]
            jobs = 4
            partitions = 8

            [streaming]
            window_intervals = 3
            max_delay_seconds = 5.0
            keep_extractions = false

            [incidents]
            jaccard = 0.75
            quiet_gap = 4
            """
        )
        from_file = ExtractionConfig.from_toml(str(path))
        from_flags = ExtractionConfig(
            detector=DetectorConfig(bins=64, training_intervals=4),
            features=("srcIP", "dstIP", "dstPort"),
            min_support=123,
            miner="fpgrowth",
            jobs=4,
            partitions=8,
            window_intervals=3,
            max_delay_seconds=5.0,
            keep_extractions=False,
            incident_jaccard=0.75,
            incident_quiet_gap=4,
        )
        assert from_file == from_flags
        assert canonical(from_file) == canonical(from_flags)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            ExtractionConfig.from_toml(str(tmp_path / "nope.toml"))

    def test_invalid_toml(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[mining\nmin_support = 5")
        with pytest.raises(ConfigError, match="invalid TOML"):
            ExtractionConfig.from_toml(str(path))

    def test_error_carries_path_context(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[mining]\nmin_suport = 5\n")
        with pytest.raises(ConfigError, match="bad.toml"):
            ExtractionConfig.from_toml(str(path))
