"""Exporter tests: Prometheus golden file, canonical JSON snapshots."""

import json
import pathlib

from repro.obs.export import format_value, render_json, snapshot
from repro.obs.metrics import MetricsRegistry

GOLDEN = pathlib.Path(__file__).with_name("golden_prometheus.txt")


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry(buckets=(0.1, 1.0))
    rows = registry.counter("repro_rows_total", "Rows seen.", ("pipeline",))
    rows.labels("linkA").inc(3)
    rows.labels("linkB").inc()
    registry.gauge("repro_pending", "Pending intervals.").set(2)
    stage = registry.histogram(
        "repro_stage_seconds", "Stage wall clock.", ("stage",)
    )
    for value in (0.05, 0.5, 5.0):
        stage.labels("mining").observe(value)
    return registry


class TestPrometheus:
    def test_golden_file(self):
        rendered = _sample_registry().render_prometheus()
        assert rendered == GOLDEN.read_text()

    def test_creation_order_does_not_matter(self):
        a = _sample_registry()
        b = MetricsRegistry(buckets=(0.1, 1.0))
        # Register in reverse order, observe the same events.
        stage = b.histogram(
            "repro_stage_seconds", "Stage wall clock.", ("stage",)
        )
        for value in (0.05, 0.5, 5.0):
            stage.labels("mining").observe(value)
        b.gauge("repro_pending", "Pending intervals.").set(2)
        rows = b.counter("repro_rows_total", "Rows seen.", ("pipeline",))
        rows.labels("linkB").inc()
        rows.labels("linkA").inc(3)
        assert a.render_prometheus() == b.render_prometheus()

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_rows_total", "", ("k",))
        c.labels('a"b\\c\nd').inc()
        line = registry.render_prometheus().splitlines()[2]
        assert line == 'repro_rows_total{k="a\\"b\\\\c\\nd"} 1'

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestFormatValue:
    def test_canonical_renderings(self):
        assert format_value(3.0) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestJsonSnapshot:
    def test_shape(self):
        snap = snapshot(_sample_registry())
        names = [m["name"] for m in snap["metrics"]]
        assert names == sorted(names)
        by_name = {m["name"]: m for m in snap["metrics"]}
        rows = by_name["repro_rows_total"]
        assert rows["type"] == "counter"
        assert rows["samples"] == [
            {"labels": {"pipeline": "linkA"}, "value": 3},
            {"labels": {"pipeline": "linkB"}, "value": 1},
        ]
        hist = by_name["repro_stage_seconds"]["samples"][0]
        assert hist["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
        assert hist["count"] == 3

    def test_render_json_byte_stable(self):
        a = render_json(_sample_registry())
        b = render_json(_sample_registry())
        assert a == b
        assert a.endswith("\n")
        json.loads(a)  # one valid document

    def test_registry_snapshot_delegates(self):
        registry = _sample_registry()
        assert registry.snapshot() == snapshot(registry)
