"""Unit tests for the StreamingExtractor (one-shot and window modes)."""

import numpy as np
import pytest

from repro.core.config import ExtractionConfig
from repro.core.session import run_session
from repro.detection.detector import DetectorConfig
from repro.detection.features import Feature
from repro.errors import ConfigError
from repro.streaming import StreamingExtractor

CHUNK_ROWS = 400


def _config(**overrides):
    return ExtractionConfig(
        detector=DetectorConfig(
            clones=3, bins=256, vote_threshold=3, training_intervals=16
        ),
        min_support=300,
        **overrides,
    )


def _chunked(table, rows=CHUNK_ROWS):
    for lo in range(0, len(table), rows):
        yield table.select(np.arange(lo, min(lo + rows, len(table))))


class TestOneShotMode:
    def test_extractions_arrive_incrementally(self, ddos_trace):
        """The DDoS extraction must surface mid-stream, before flush."""
        streamer = StreamingExtractor(
            _config(), seed=1, interval_seconds=ddos_trace.interval_seconds
        )
        seen_before_flush = []
        for chunk in _chunked(ddos_trace.flows):
            seen_before_flush.extend(streamer.process_chunk(chunk))
        assert 24 in [e.interval for e in seen_before_flush]
        streamer.flush()
        result = streamer.result()
        assert result.intervals == ddos_trace.n_intervals
        assert result.flows == len(ddos_trace.flows)
        assert result.late_dropped == 0
        assert result.windows_mined == 0  # one-shot mode never windows

    def test_result_snapshot_mid_stream(self, ddos_trace):
        streamer = StreamingExtractor(
            _config(), seed=1, interval_seconds=ddos_trace.interval_seconds
        )
        chunks = list(_chunked(ddos_trace.flows))
        for chunk in chunks[: len(chunks) // 2]:
            streamer.process_chunk(chunk)
        partial = streamer.result()
        assert 0 < partial.intervals < ddos_trace.n_intervals
        assert partial.detection.n_intervals == partial.intervals


class TestWindowMode:
    def test_window_mode_catches_ddos(self, ddos_trace, small_profile):
        streamer = StreamingExtractor(
            _config(window_intervals=3),
            seed=1,
            interval_seconds=ddos_trace.interval_seconds,
        )
        result = run_session(streamer.session, _chunked(ddos_trace.flows))
        assert result.windows_mined >= 1
        victim = small_profile.internal_base + 5
        hits = [
            s.as_dict().get(Feature.DST_IP)
            for e in result.extractions
            for s in e.itemsets
        ]
        assert victim in hits
        # The report must describe the mined window, not the single
        # interval: stated flow counts and itemset supports consistent.
        for e in result.extractions:
            assert e.prefilter.selected_flows == e.mining.n_transactions
            assert e.prefilter.selected_flows <= e.prefilter.input_flows
            for itemset in e.itemsets:
                assert itemset.support <= e.prefilter.selected_flows

    def test_window_accounting_consistent(self, ddos_trace):
        streamer = StreamingExtractor(
            _config(window_intervals=4),
            seed=1,
            interval_seconds=ddos_trace.interval_seconds,
        )
        result = run_session(streamer.session, _chunked(ddos_trace.flows))
        # Exactly the mined windows became extractions.
        assert result.windows_mined == len(result.extractions)
        assert result.intervals == ddos_trace.n_intervals


class TestKeepReports:
    def test_dropped_reports_keep_extractions_identical(self, ddos_trace):
        kept = run_session(
            StreamingExtractor(
                _config(), seed=1,
                interval_seconds=ddos_trace.interval_seconds,
            ).session,
            _chunked(ddos_trace.flows),
        )
        unbounded = StreamingExtractor(
            _config(),
            seed=1,
            interval_seconds=ddos_trace.interval_seconds,
            keep_reports=False,
        )
        dropped = run_session(unbounded.session, _chunked(ddos_trace.flows))
        assert [e.render() for e in dropped.extractions] == (
            [e.render() for e in kept.extractions]
        )
        assert dropped.detection is None
        assert kept.detection is not None
        # The bank really is empty - memory stays flat on long streams.
        assert unbounded.extractor.detector_bank.reports == []


class TestConfigKnobs:
    def test_stream_knobs_validated(self):
        with pytest.raises(ConfigError):
            ExtractionConfig(window_intervals=0)
        with pytest.raises(ConfigError):
            ExtractionConfig(max_delay_seconds=-1.0)
        with pytest.raises(ConfigError):
            ExtractionConfig(max_pending_intervals=0)

    def test_context_manager_closes_owned_extractor(self):
        with StreamingExtractor(_config(jobs=2, backend="thread")) as s:
            assert s.extractor.engine is not None
        # close() is idempotent
        s.close()

    def test_borrowed_extractor_not_closed(self, tiny_flows):
        from repro.core.pipeline import AnomalyExtractor

        with AnomalyExtractor(_config(jobs=2, backend="thread")) as extractor:
            streamer = StreamingExtractor(extractor=extractor)
            streamer.close()  # must NOT close the borrowed engine pool
            assert streamer.config is extractor.config
            # The borrowed bank still works after the streamer is closed.
            report = extractor.detector_bank.observe(tiny_flows)
            assert report.flow_count == len(tiny_flows)
