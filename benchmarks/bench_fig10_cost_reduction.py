"""Fig. 10: average decrease in classification cost vs minimum support.

Paper: R = |F| / |I| (flows in the flagged interval over item-sets in
the report) averaged over the anomalous intervals grows from ~600k to
~800k as the minimum support rises from 3000 to 10000, saturating once
the report reaches its irreducible size.  Intervals hold 0.7-2.6M flows.

Our intervals are ~1/750 the size, so the absolute reduction scales
accordingly (~800-1200); the shape claims - monotone growth with s and
saturation - are scale-free.
"""


from conftest import SUPPORT_GRID

from repro.core.cost import cost_curve


def test_fig10_cost_reduction(benchmark, extraction_sweep, report):
    per_interval = {
        support: [
            (n_flows, len(itemsets))
            for _, n_flows, itemsets, _ in rows
            if itemsets
        ]
        for support, rows in extraction_sweep.items()
    }

    curve = benchmark(cost_curve, per_interval)

    report(
        "",
        "Fig. 10 - classification cost reduction R = |F| / |I| "
        "(interval size ~1/750 of the paper's)",
    )
    for point in curve:
        paper_support = SUPPORT_GRID[point.min_support]
        report(
            f"  s={point.min_support} (paper s={paper_support}): "
            f"mean R={point.mean_reduction:.0f} "
            f"mean item-sets={point.mean_itemsets:.1f} "
            f"over {point.intervals} intervals "
            f"(paper R: 600k-800k at full scale)"
        )

    reductions = [p.mean_reduction for p in curve]
    # Monotone growth with minimum support (the Fig. 10 shape).
    assert reductions == sorted(reductions)
    # Saturation: the relative gain of the last step is smaller than
    # the total dynamic range would suggest for linear growth.
    assert reductions[-1] / reductions[0] < 5.0
    # Scale-adjusted magnitude: paper's 600k-800k / 750 ~ 800-1100.
    assert 200 < reductions[-1] < 10_000
    # The report stays small in absolute terms - the practical point.
    assert curve[-1].mean_itemsets < 10
