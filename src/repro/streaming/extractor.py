"""Online anomaly extraction over an unbounded flow stream.

:class:`StreamingExtractor` runs the paper's Fig. 3 pipeline - histogram
detectors, voting, union meta-data, prefiltering, frequent item-set
mining - one completed measurement interval at a time, with memory
bounded by the interval/window size rather than the trace length.
Chunks go through an :class:`~repro.streaming.assembler.IntervalAssembler`;
every completed interval feeds the detector bank, and an alarm triggers
extraction either per interval (the batch-equivalent default) or over a
sliding window of recent suspicious flows
(:class:`~repro.mining.streaming.SlidingWindowMiner`, the mode paper
Section V asks for).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.config import ExtractionConfig
from repro.core.pipeline import (
    AnomalyExtractor,
    ExtractionResult,
    notify_sink_interval,
)
from repro.core.prefilter import PrefilterResult, prefilter
from repro.core.report import ExtractionReport
from repro.errors import ExtractionError
from repro.detection.manager import DetectionRun
from repro.flows.stream import DEFAULT_INTERVAL_SECONDS, IntervalView
from repro.flows.table import FlowTable
from repro.mining import MINERS
from repro.mining.streaming import SlidingWindowMiner
from repro.streaming.assembler import IntervalAssembler


@dataclass
class StreamExtraction:
    """Everything a finished (or flushed) streaming run produced."""

    extractions: list[ExtractionResult] = field(default_factory=list)
    detection: DetectionRun | None = None
    #: Intervals emitted by the assembler (including empty gaps).
    intervals: int = 0
    #: Flows accepted into intervals (late drops excluded).
    flows: int = 0
    #: Flows dropped because their interval had already been emitted.
    late_dropped: int = 0
    #: Sliding-window mode only: windows mined / skipped by the
    #: incremental candidate screen.
    windows_mined: int = 0
    windows_skipped: int = 0
    #: Total extractions produced.  Always populated - with
    #: ``keep_extractions=False`` the ``extractions`` list stays empty
    #: (emitted results are evicted to keep memory flat) and this
    #: counter is the only record of how many there were.
    extraction_count: int = 0

    @property
    def flagged_intervals(self) -> list[int]:
        return [e.interval for e in self.extractions]


class StreamingExtractor:
    """Drive the full extraction pipeline chunk by chunk.

    Usage (the ``with`` releases the worker pool for ``jobs > 1``
    configs)::

        with StreamingExtractor(config, interval_seconds=900.0) as s:
            for chunk in iter_csv("trace.csv"):
                for extraction in s.process_chunk(chunk):
                    print(extraction.render())
            s.flush()
            summary = s.result()

    With ``config.window_intervals == 1`` (the default) each alarmed
    interval is prefiltered and mined on its own, exactly like
    :meth:`AnomalyExtractor.run_trace` - the two paths produce
    byte-identical reports on the same trace.  With
    ``window_intervals > 1`` the prefiltered suspicious flows of the
    last N intervals are mined together through a
    :class:`SlidingWindowMiner`, whose incremental single-item counts
    skip the mining run entirely on quiet windows.

    Args:
        config: pipeline configuration (stream knobs included).
        seed: detector seed (ignored when ``extractor`` is given).
        interval_seconds: measurement interval length.
        origin: time of interval 0 (must be known up front; see
            :class:`IntervalAssembler`).
        extractor: reuse an existing :class:`AnomalyExtractor` (its
            config wins); otherwise one is built and owned.
        sink: optional report sink (anything with
            ``append(ExtractionReport)``, e.g. an
            :class:`~repro.incidents.store.IncidentStore`); every
            extraction is pushed to it as it completes, giving the
            streaming path the same persistence hook as
            :meth:`AnomalyExtractor.run_trace`.  Defaults to the
            extractor's ``config.store_path`` store when one is open.
        keep_reports: retain every per-interval
            :class:`~repro.detection.manager.IntervalReport` so
            :meth:`result` can attach a full
            :class:`~repro.detection.manager.DetectionRun` (the
            batch-parity default).  Set False for genuinely unbounded
            streams: reports are dropped after each interval, memory
            stays flat, and :attr:`StreamExtraction.detection` is
            ``None``.  Extractions are governed separately by
            ``config.streaming.keep_extractions``: when that is False,
            each emitted extraction (and its report state, which pins
            the prefiltered flow table) is evicted once the next batch
            of intervals arrives - consume results from the return
            value of :meth:`process_chunk` / :meth:`flush` as they
            appear, and read totals from
            :attr:`StreamExtraction.extraction_count`.  Together the
            two knobs make day-scale noisy pipes run truly flat.
    """

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        seed: int = 0,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        origin: float = 0.0,
        extractor: AnomalyExtractor | None = None,
        keep_reports: bool = True,
        sink: object | None = None,
    ):
        self._owns_extractor = extractor is None
        self._extractor = (
            extractor
            if extractor is not None
            else AnomalyExtractor(config, seed=seed)
        )
        self.config = self._extractor.config
        self._sink = sink if sink is not None else self._extractor.store
        self.assembler = IntervalAssembler(
            interval_seconds,
            origin=origin,
            max_delay_seconds=self.config.max_delay_seconds,
            max_pending_intervals=self.config.max_pending_intervals,
        )
        self._window_miner: SlidingWindowMiner | None = None
        # Raw per-interval sizes of the current window, mirroring the
        # miner's batches, so window-mode reports can state the true
        # input-flow count.
        self._window_raw_flows: deque[int] = deque(
            maxlen=self.config.window_intervals
        )
        if self.config.window_intervals > 1:
            self._window_miner = SlidingWindowMiner(
                window=self.config.window_intervals,
                min_support=self.config.min_support,
                miner=MINERS[self.config.miner],
                maximal_only=self.config.maximal_only,
            )
        self.keep_reports = keep_reports
        self.keep_extractions = self.config.keep_extractions
        self.extraction_count = 0
        #: With ``keep_extractions=False``: the extractions emitted by
        #: the most recent process_chunk/flush call, pinned until the
        #: next call so the caller can render them and ``report_for``
        #: stays valid for exactly that window (id-keyed state must
        #: never outlive its object).
        self._recent: list[ExtractionResult] = []
        self.extractions: list[ExtractionResult] = []
        #: Per-extraction report state, keyed by object identity (safe:
        #: ``extractions`` pins the objects): the window fill captured
        #: at emission time - the fill, and hence the report bounds,
        #: are only known then - replaced by the lazily built report
        #: once :meth:`report_for` constructs it.  Sink-less runs never
        #: pay for reports nothing reads.  Grows with alarms, like
        #: ``extractions`` itself.
        self._report_state: dict[int, int | ExtractionReport] = {}
        self.windows_mined = 0
        self.windows_skipped = 0

    # ------------------------------------------------------------------
    @property
    def extractor(self) -> AnomalyExtractor:
        return self._extractor

    def close(self) -> None:
        """Release the owned extractor's resources (idempotent)."""
        if self._owns_extractor:
            self._extractor.close()

    def __enter__(self) -> "StreamingExtractor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def process_chunk(self, chunk: FlowTable) -> list[ExtractionResult]:
        """Absorb one chunk; return extractions from the intervals it
        completed (most chunks complete none or one)."""
        return self._process_views(self.assembler.push(chunk))

    def flush(self) -> list[ExtractionResult]:
        """End of stream: drain trailing intervals held by the lateness
        allowance and return any extractions they trigger."""
        return self._process_views(self.assembler.flush())

    def run(
        self, chunks: Iterable[FlowTable] | Iterator[FlowTable]
    ) -> StreamExtraction:
        """Consume a whole chunk iterator, flush, and summarize."""
        for chunk in chunks:
            self.process_chunk(chunk)
        self.flush()
        return self.result()

    def result(self) -> StreamExtraction:
        """Snapshot of the run so far (callable mid-stream)."""
        detection = None
        if self.keep_reports:
            detection = self._extractor.detector_bank.detection_run()
        return StreamExtraction(
            extractions=list(self.extractions),
            detection=detection,
            intervals=self.assembler.intervals_emitted,
            flows=self.assembler.flows_seen,
            late_dropped=self.assembler.late_dropped,
            windows_mined=self.windows_mined,
            windows_skipped=self.windows_skipped,
            extraction_count=self.extraction_count,
        )

    # ------------------------------------------------------------------
    def _process_views(
        self, views: list[IntervalView]
    ) -> list[ExtractionResult]:
        if not self.keep_extractions:
            # The previous batch has been consumed; evict its
            # extractions and their report state so alarm-heavy pipes
            # stay flat (each result pins its prefiltered FlowTable).
            for old in self._recent:
                self._report_state.pop(id(old), None)
            self._recent.clear()
        results = []
        for view in views:
            extraction = self._process_interval(view)
            if extraction is not None:
                results.append(extraction)
                self.extraction_count += 1
                if self.keep_extractions:
                    self.extractions.append(extraction)
                else:
                    self._recent.append(extraction)
                # In window mode the extraction describes the whole
                # mined window, so its report bounds must span it too;
                # the deque length is the window's current fill, only
                # known now - record it so report_for can build the
                # report later.
                window = 1
                if self._window_miner is not None:
                    window = max(1, len(self._window_raw_flows))
                self._report_state[id(extraction)] = window
                if self._sink is not None:
                    self._sink.append(self.report_for(extraction))
            if not self.keep_reports:
                self._extractor.detector_bank.clear_reports()
        if views:
            # Clean intervals leave no report but must still age
            # incidents; the assembler emits views in interval order.
            notify_sink_interval(self._sink, views[-1].index)
        return results

    def report_for(self, extraction: ExtractionResult) -> ExtractionReport:
        """The serializable report of an extraction this streamer
        produced (the very object the sink received, when a sink is
        attached) - bounds cover the mined window, not just the
        triggering interval.  Built lazily and cached, so runs whose
        reports nothing reads never pay for their construction."""
        key = id(extraction)
        state = self._report_state.get(key)
        if isinstance(state, ExtractionReport):
            return state
        if state is None:
            raise ExtractionError(
                "unknown extraction: report_for only serves results "
                "produced by this streamer"
            )
        report = ExtractionReport.from_result(
            extraction,
            self.assembler.interval_seconds,
            self.assembler.origin,
            window_intervals=state,
        )
        self._report_state[key] = report
        return report

    def _process_interval(self, view: IntervalView) -> ExtractionResult | None:
        if self._window_miner is None:
            # One-shot mode shares AnomalyExtractor's own per-interval
            # path, which is what guarantees batch equivalence.
            return self._extractor.process_interval(view.flows)
        report = self._extractor.detector_bank.observe(view.flows)
        metadata = report.metadata()
        self._window_raw_flows.append(len(view.flows))
        if not report.alarm or metadata.is_empty():
            # Slide an empty batch through so the window keeps tracking
            # the last N *intervals*, not the last N alarms.
            self._window_miner.push(FlowTable.empty())
            return None
        selected = prefilter(
            view.flows, metadata, self.config.prefilter_mode
        )
        self._window_miner.push(selected.flows)
        mining = self._window_miner.mine_if_candidates()
        if mining is None:
            self.windows_skipped += 1
            return None
        self.windows_mined += 1
        # The report must describe what was actually mined - the whole
        # window's suspicious flows - not just this interval's share,
        # or the rendered supports would exceed the stated flow counts.
        window_selected = self._window_miner.window_flows()
        window_prefilter = PrefilterResult(
            flows=window_selected,
            mode=self.config.prefilter_mode,
            input_flows=sum(self._window_raw_flows),
            selected_flows=len(window_selected),
        )
        return ExtractionResult(
            interval=report.interval,
            metadata=metadata,
            prefilter=window_prefilter,
            mining=mining,
            alarmed_features=report.alarmed_features,
        )
