"""Unit tests for trace serialization (CSV and NPZ)."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.flows.io import (
    iter_csv_records,
    read_csv,
    read_npz,
    records_to_csv,
    write_csv,
    write_npz,
)
from repro.flows.record import FlowRecord
from repro.flows.table import FlowTable


class TestCsv:
    def test_round_trip(self, tiny_flows, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_flows, path)
        assert read_csv(path) == tiny_flows

    def test_round_trip_preserves_float_start(self, tmp_path):
        table = FlowTable.from_arrays(
            [1], [2], [3], [4], [6], [1], [40], start=[123.456789]
        )
        path = tmp_path / "trace.csv"
        write_csv(table, path)
        assert read_csv(path).start[0] == pytest.approx(123.456789)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            read_csv(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceFormatError, match="header"):
            read_csv(path)

    def test_ragged_row_rejected(self, tiny_flows, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_flows, path)
        with open(path, "a") as handle:
            handle.write("1,2,3\n")
        with pytest.raises(TraceFormatError, match="fields"):
            read_csv(path)

    def test_non_numeric_cell_rejected(self, tiny_flows, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_flows, path)
        with open(path, "a") as handle:
            handle.write("x," + ",".join(["1"] * 8) + "\n")
        with pytest.raises(TraceFormatError, match="bad value"):
            read_csv(path)

    def test_trailing_blank_lines_tolerated(self, tiny_flows, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_flows, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert read_csv(path) == tiny_flows

    def test_iter_csv_records(self, tiny_flows, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(tiny_flows, path)
        records = list(iter_csv_records(path))
        assert records == list(tiny_flows)

    def test_records_to_csv(self, tmp_path):
        records = [FlowRecord(1, 2, 3, 4, 6, 1, 40, start=0.5)]
        path = tmp_path / "records.csv"
        records_to_csv(records, path)
        assert read_csv(path).row(0) == records[0]


class TestNpz:
    def test_round_trip(self, tiny_flows, tmp_path):
        path = tmp_path / "trace.npz"
        write_npz(tiny_flows, path)
        assert read_npz(path) == tiny_flows

    def test_round_trip_empty(self, tmp_path):
        path = tmp_path / "empty.npz"
        write_npz(FlowTable.empty(), path)
        assert len(read_npz(path)) == 0

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, src_ip=np.array([1]))
        with pytest.raises(TraceFormatError, match="missing columns"):
            read_npz(path)

    def test_large_trace_round_trip(self, tmp_path, rng):
        n = 5000
        table = FlowTable.from_arrays(
            rng.integers(0, 2**32, n),
            rng.integers(0, 2**32, n),
            rng.integers(0, 2**16, n),
            rng.integers(0, 2**16, n),
            rng.integers(0, 256, n),
            rng.integers(1, 1000, n),
            rng.integers(40, 10**6, n),
            start=rng.uniform(0, 900, n),
            label=rng.integers(-1, 5, n),
        )
        path = tmp_path / "big.npz"
        write_npz(table, path)
        assert read_npz(path) == table
