"""Brute-force reference miner used to validate the real miners.

Enumerates every subset of every transaction (each transaction has just
seven items, so 127 non-empty subsets) and counts exact supports.  Only
usable on small inputs - which is the point: an implementation simple
enough to be obviously correct.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from repro.mining.transactions import TransactionSet


def brute_force_frequent(
    transactions: TransactionSet, min_support: int
) -> dict[tuple[int, ...], int]:
    """Exact {itemset: support} for all frequent item-sets."""
    counter: Counter[tuple[int, ...]] = Counter()
    for row in transactions.matrix:
        items = sorted(int(x) for x in row)
        for size in range(1, len(items) + 1):
            for subset in combinations(items, size):
                counter[subset] += 1
    return {
        itemset: support
        for itemset, support in counter.items()
        if support >= min_support
    }


def brute_force_maximal(
    frequent: dict[tuple[int, ...], int],
) -> dict[tuple[int, ...], int]:
    """Quadratic-time maximality filter (first-principles definition)."""
    maximal = {}
    for items, support in frequent.items():
        item_set = set(items)
        if not any(
            len(other) > len(items) and item_set < set(other)
            for other in frequent
        ):
            maximal[items] = support
    return maximal
