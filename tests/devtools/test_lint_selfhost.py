"""Self-hosting: the shipped tree satisfies its own linter.

This is the gate CI runs; keeping it in the suite means a violation
fails the ordinary test run too, not just the lint job.
"""

from __future__ import annotations

import os

from repro.devtools import lint_paths
from repro.devtools.cli import main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src", "repro")


def test_repro_lint_src_repro_exits_zero(capsys):
    assert main([SRC]) == 0
    assert capsys.readouterr().out == ""


def test_every_rule_runs_over_the_whole_tree():
    result = lint_paths([SRC], root=REPO_ROOT)
    assert result.findings == []
    # The walk really covered the package, devtools included.
    assert result.checked_files > 100
    assert result.rules == [
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        "RPR007",
    ]
