"""Unit tests for association rule derivation."""

import pytest

from repro.detection.features import Feature
from repro.errors import MiningError
from repro.mining.items import encode_item
from repro.mining.rules import derive_rules

A = encode_item(Feature.SRC_IP, 1)
B = encode_item(Feature.DST_PORT, 80)
C = encode_item(Feature.PROTOCOL, 6)


def _sorted(*items):
    return tuple(sorted(items))


@pytest.fixture()
def frequent():
    # 100 transactions; A:40, B:50, AB:40, C:80, BC:45, ABC absent.
    return {
        _sorted(A): 40,
        _sorted(B): 50,
        _sorted(C): 80,
        _sorted(A, B): 40,
        _sorted(B, C): 45,
    }


class TestDeriveRules:
    def test_confidence_computation(self, frequent):
        rules = derive_rules(frequent, n_transactions=100, min_confidence=0.9)
        by_pair = {(r.antecedent, r.consequent): r for r in rules}
        rule = by_pair[(_sorted(A), _sorted(B))]
        assert rule.confidence == pytest.approx(1.0)  # 40/40
        assert rule.support == 40

    def test_lift_computation(self, frequent):
        rules = derive_rules(frequent, n_transactions=100, min_confidence=0.5)
        rule = {(r.antecedent, r.consequent): r for r in rules}[
            (_sorted(A), _sorted(B))
        ]
        # lift = confidence / P(B) = 1.0 / 0.5 = 2.
        assert rule.lift == pytest.approx(2.0)

    def test_min_confidence_filters(self, frequent):
        strict = derive_rules(frequent, 100, min_confidence=0.95)
        loose = derive_rules(frequent, 100, min_confidence=0.5)
        assert len(strict) < len(loose)
        assert all(r.confidence >= 0.95 for r in strict)

    def test_sorted_by_confidence(self, frequent):
        rules = derive_rules(frequent, 100, min_confidence=0.1)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_single_items_yield_no_rules(self):
        assert derive_rules({_sorted(A): 10}, 100) == []

    def test_both_directions_considered(self, frequent):
        rules = derive_rules(frequent, 100, min_confidence=0.1)
        pairs = {(r.antecedent, r.consequent) for r in rules}
        assert (_sorted(A), _sorted(B)) in pairs
        assert (_sorted(B), _sorted(A)) in pairs

    def test_non_closed_family_rejected(self):
        with pytest.raises(MiningError, match="downward closed"):
            derive_rules({_sorted(A, B): 10}, 100, min_confidence=0.1)

    def test_validation(self, frequent):
        with pytest.raises(MiningError):
            derive_rules(frequent, 100, min_confidence=0.0)
        with pytest.raises(MiningError):
            derive_rules(frequent, 0)

    def test_str_rendering(self, frequent):
        rules = derive_rules(frequent, 100, min_confidence=0.9)
        text = str(rules[0])
        assert "=>" in text
        assert "confidence=" in text


D = encode_item(Feature.PACKETS, 1)


class TestDeriveRulesHandComputed:
    """Every measure checked against hand-worked arithmetic."""

    @pytest.fixture()
    def family(self):
        # 8 transactions: A:4, B:6, AB:3, ABD impossible (D absent).
        return {
            _sorted(A): 4,
            _sorted(B): 6,
            _sorted(A, B): 3,
        }

    def test_all_measures_a_implies_b(self, family):
        rules = derive_rules(family, n_transactions=8, min_confidence=0.1)
        rule = {(r.antecedent, r.consequent): r for r in rules}[
            (_sorted(A), _sorted(B))
        ]
        assert rule.support == 3
        # confidence = supp(AB)/supp(A) = 3/4
        assert rule.confidence == pytest.approx(0.75)
        # lift = confidence / P(B) = 0.75 / (6/8) = 1.0 (independent)
        assert rule.lift == pytest.approx(1.0)

    def test_all_measures_b_implies_a(self, family):
        rules = derive_rules(family, n_transactions=8, min_confidence=0.1)
        rule = {(r.antecedent, r.consequent): r for r in rules}[
            (_sorted(B), _sorted(A))
        ]
        # confidence = 3/6; lift = 0.5 / (4/8) = 1.0
        assert rule.confidence == pytest.approx(0.5)
        assert rule.lift == pytest.approx(1.0)

    def test_lift_above_and_below_one(self):
        # 10 transactions; A and B co-occur always (attraction), A and C
        # almost never (repulsion).
        family = {
            _sorted(A): 2,
            _sorted(B): 2,
            _sorted(C): 8,
            _sorted(A, B): 2,
            _sorted(A, C): 1,
        }
        rules = derive_rules(family, n_transactions=10, min_confidence=0.1)
        by_pair = {(r.antecedent, r.consequent): r for r in rules}
        attract = by_pair[(_sorted(A), _sorted(B))]
        # lift = (2/2) / (2/10) = 5.0
        assert attract.lift == pytest.approx(5.0)
        repel = by_pair[(_sorted(A), _sorted(C))]
        # lift = (1/2) / (8/10) = 0.625
        assert repel.lift == pytest.approx(0.625)

    def test_three_item_family_splits(self):
        # 100 transactions, perfectly nested: every ABC holds AB, etc.
        family = {
            _sorted(A): 50,
            _sorted(B): 40,
            _sorted(C): 30,
            _sorted(A, B): 40,
            _sorted(A, C): 30,
            _sorted(B, C): 30,
            _sorted(A, B, C): 30,
        }
        rules = derive_rules(family, n_transactions=100, min_confidence=1.0)
        pairs = {(r.antecedent, r.consequent) for r in rules}
        # Exactly the implications that hold with confidence 1.
        assert (_sorted(C), _sorted(A, B)) in pairs
        assert (_sorted(B, C), _sorted(A)) in pairs
        assert (_sorted(B), _sorted(A)) in pairs
        assert (_sorted(A), _sorted(B)) not in pairs  # 40/50 < 1
        assert all(r.confidence == pytest.approx(1.0) for r in rules)


class TestDeriveRulesOrdering:
    def test_tie_break_support_then_antecedent(self):
        # Two rule pairs with identical confidence 1.0 but different
        # supports; then equal-support ties fall back to the sorted
        # antecedent tuple.
        family = {
            _sorted(A): 30,
            _sorted(B): 30,
            _sorted(C): 20,
            _sorted(D): 20,
            _sorted(A, B): 30,
            _sorted(C, D): 20,
        }
        rules = derive_rules(family, n_transactions=60, min_confidence=1.0)
        assert [r.support for r in rules] == [30, 30, 20, 20]
        first_pair = [r.antecedent for r in rules[:2]]
        assert first_pair == sorted(first_pair)
        second_pair = [r.antecedent for r in rules[2:]]
        assert second_pair == sorted(second_pair)

    def test_full_sort_key_is_deterministic(self, frequent):
        once = derive_rules(frequent, 100, min_confidence=0.1)
        twice = derive_rules(dict(reversed(list(frequent.items()))),
                             100, min_confidence=0.1)
        assert once == twice


class TestDeriveRulesValidation:
    @pytest.fixture()
    def family(self):
        return {_sorted(A): 4, _sorted(B): 6, _sorted(A, B): 3}

    def test_min_confidence_zero_rejected(self, family):
        with pytest.raises(MiningError, match="min_confidence"):
            derive_rules(family, 8, min_confidence=0.0)

    def test_min_confidence_above_one_rejected(self, family):
        with pytest.raises(MiningError, match="min_confidence"):
            derive_rules(family, 8, min_confidence=1.2)

    def test_min_confidence_negative_rejected(self, family):
        with pytest.raises(MiningError, match="min_confidence"):
            derive_rules(family, 8, min_confidence=-0.5)

    def test_min_confidence_exactly_one_allowed(self, family):
        rules = derive_rules(family, 8, min_confidence=1.0)
        assert rules == []  # 3/4 and 3/6 both fall short of 1.0

    def test_n_transactions_zero_rejected(self, family):
        with pytest.raises(MiningError, match="n_transactions"):
            derive_rules(family, 0)

    def test_n_transactions_negative_rejected(self, family):
        with pytest.raises(MiningError, match="n_transactions"):
            derive_rules(family, -5)

    def test_missing_antecedent_subset_rejected(self):
        with pytest.raises(MiningError, match="downward closed"):
            derive_rules({_sorted(A, B): 3, _sorted(A): 4}, 8,
                         min_confidence=0.1)
