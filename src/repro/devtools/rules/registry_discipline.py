"""RPR003 - extension lookups go through the registry API.

The ISSUE 4 migration put every extension point behind a named
:class:`repro.registry.Registry`, whose ``get`` raises a
:class:`~repro.errors.RegistryError` listing the valid choices with a
did-you-mean hint.  Direct subscripting (``MINERS[name]``) still works
through the legacy ``Mapping`` shim but bypasses nothing visibly - so
new code keeps sneaking it in, and a future registry change (async
loading, per-call context) would break those sites silently.  Outside
``repro/registry.py`` every lookup must use ``.get(...)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.engine import Rule
from repro.devtools.findings import Finding
from repro.devtools.project import ModuleInfo

#: The extension-registry objects (and the MINERS legacy alias).
REGISTRY_NAMES = frozenset(
    {"MINERS", "miners", "feature_sets", "readers", "sinks", "routers"}
)

_EXEMPT_MODULES = ("repro.registry",)
_EXEMPT_PREFIXES = ("repro.devtools",)


def _subscripted_registry(node: ast.Subscript) -> str | None:
    value = node.value
    if isinstance(value, ast.Name) and value.id in REGISTRY_NAMES:
        return value.id
    if isinstance(value, ast.Attribute) and value.attr in REGISTRY_NAMES:
        return value.attr
    return None


class RegistryDisciplineRule(Rule):
    code = "RPR003"
    name = "registry-discipline"
    summary = (
        "no direct indexing of extension registries; use Registry.get"
    )

    def start_module(self, module: ModuleInfo) -> None:
        self._exempt = module.name in _EXEMPT_MODULES or (
            module.name.startswith(_EXEMPT_PREFIXES)
        )

    def visit_Subscript(
        self, module: ModuleInfo, node: ast.Subscript
    ) -> Iterator[Finding]:
        if self._exempt:
            return
        name = _subscripted_registry(node)
        if name is None:
            return
        yield Finding(
            path=module.rel,
            line=node.lineno,
            col=node.col_offset,
            code=self.code,
            message=(
                f"direct registry indexing {name}[...] bypasses the "
                f"registry API; use {name}.get(...) (raises "
                f"RegistryError with the valid choices)"
            ),
        )
