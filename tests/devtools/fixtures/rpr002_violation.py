"""Fixture: uncatalogued metrics and an enabled-branch."""


def instrument(registry, metrics, get_name):
    uncatalogued = registry.counter("repro_bogus_total", "Nope.")
    wrong_kind = registry.gauge("repro_flows_processed_total", "Kind.")
    wrong_labels = registry.counter(
        "repro_assembler_late_dropped_total", "Labels.", ("pipeline",)
    )
    dynamic = registry.counter(get_name(), "Dynamic.")
    if metrics.enabled:
        return None
    return uncatalogued, wrong_kind, wrong_labels, dynamic
