"""The session redesign's contract: one orchestration path.

`ExtractionSession` is the single execution surface `run_trace`,
`run_stream`, and `StreamingExtractor` now delegate to.  These tests
hold the ISSUE 5 acceptance criteria: a batch session fed a whole
trace (in one piece or arbitrary chunks) equals `run_trace`
byte-for-byte, a chunk-fed stream session equals the incremental
`StreamingExtractor`, and `close()` releases the owned extractor's
store and worker pool even when a mid-feed chunk raised.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.core.config import ExtractionConfig
from repro.core.pipeline import AnomalyExtractor, TraceExtraction
from repro.core.session import ExtractionSession, StreamExtraction, run_session
from repro.detection.detector import DetectorConfig
from repro.errors import ConfigError, ExtractionError
from repro.sinks import MemorySink

INTERVAL_SECONDS = 900.0


def _config(**overrides):
    return ExtractionConfig(
        detector=DetectorConfig(
            clones=3, bins=256, vote_threshold=3, training_intervals=16
        ),
        min_support=300,
        **overrides,
    )


def _chunked(table, rows):
    for lo in range(0, len(table), rows):
        yield table.select(np.arange(lo, min(lo + rows, len(table))))


def _rendered(extractions):
    return "\n\n".join(e.render() for e in extractions)


@pytest.fixture(scope="module")
def batch(ddos_trace):
    with AnomalyExtractor(_config(), seed=1) as extractor:
        return extractor.run_trace(ddos_trace.flows, INTERVAL_SECONDS)


class TestBatchSessionEquivalence:
    def test_whole_trace_feed_equals_run_trace(self, ddos_trace, batch):
        with AnomalyExtractor(_config(), seed=1) as extractor:
            with extractor.session(
                "batch", interval_seconds=INTERVAL_SECONDS
            ) as session:
                assert session.feed(ddos_trace.flows) == []
                result = session.finish()
        assert isinstance(result, TraceExtraction)
        assert result.flagged_intervals == batch.flagged_intervals
        assert result.flagged_intervals  # the DDoS was actually caught
        assert _rendered(result.extractions) == _rendered(batch.extractions)
        assert (
            result.detection.alarm_intervals()
            == batch.detection.alarm_intervals()
        )

    def test_mid_run_flush_is_inert_in_batch_mode(self, ddos_trace, batch):
        """Batch flush must not drain early: a drain would re-window
        later feeds from the origin and replay already-observed
        intervals through the detectors."""
        half = len(ddos_trace.flows) // 2
        first = ddos_trace.flows.select(np.arange(half))
        second = ddos_trace.flows.select(
            np.arange(half, len(ddos_trace.flows))
        )
        with AnomalyExtractor(_config(), seed=1) as extractor:
            session = extractor.session(
                "batch", interval_seconds=INTERVAL_SECONDS
            )
            session.feed(first)
            assert session.flush() == []  # defers to finish
            session.feed(second)
            result = session.finish()
        assert _rendered(result.extractions) == _rendered(batch.extractions)

    def test_chunk_feed_equals_run_trace(self, ddos_trace, batch):
        """Batch mode accumulates chunks; windowing happens at finish,
        so arbitrary chunking cannot change the result."""
        with AnomalyExtractor(_config(), seed=1) as extractor:
            session = extractor.session(
                "batch", interval_seconds=INTERVAL_SECONDS
            )
            for chunk in _chunked(ddos_trace.flows, 613):
                assert session.feed(chunk) == []
            result = session.finish()
        assert _rendered(result.extractions) == _rendered(batch.extractions)

    def test_sink_reports_byte_identical(self, ddos_trace):
        direct, via_session = MemorySink(), MemorySink()
        with AnomalyExtractor(_config(), seed=1) as extractor:
            extractor.run_trace(
                ddos_trace.flows, INTERVAL_SECONDS, sink=direct
            )
        with AnomalyExtractor(_config(), seed=1) as extractor:
            result = run_session(
                extractor.session(
                    "batch",
                    interval_seconds=INTERVAL_SECONDS,
                    sink=via_session,
                ),
                [ddos_trace.flows],
            )
        assert [r.to_json() for r in via_session.reports] == [
            r.to_json() for r in direct.reports
        ]
        assert via_session.last_interval == direct.last_interval
        assert len(via_session.reports) == len(result.extractions)


class TestStreamSessionEquivalence:
    def test_feed_equals_streaming_extractor(self, ddos_trace):
        from repro.streaming import StreamingExtractor

        incremental = []
        with StreamingExtractor(
            _config(), seed=1, interval_seconds=INTERVAL_SECONDS
        ) as streamer:
            for chunk in _chunked(ddos_trace.flows, 517):
                incremental.extend(streamer.process_chunk(chunk))
            incremental.extend(streamer.flush())
            expected = streamer.result()
        with api.session(
            _config(), mode="stream", interval_seconds=INTERVAL_SECONDS,
            seed=1,
        ) as session:
            got = []
            for chunk in _chunked(ddos_trace.flows, 517):
                got.extend(session.feed(chunk))
            result = session.finish()
        assert isinstance(result, StreamExtraction)
        assert _rendered(got) == _rendered(incremental)
        assert result.intervals == expected.intervals
        assert result.flows == expected.flows
        assert result.extraction_count == expected.extraction_count
        assert _rendered(result.extractions) == _rendered(
            expected.extractions
        )

    def test_run_stream_equals_stream_session(self, ddos_trace):
        with AnomalyExtractor(_config(), seed=1) as extractor:
            expected = extractor.run_stream(
                _chunked(ddos_trace.flows, 517), INTERVAL_SECONDS
            )
        with api.session(
            _config(), mode="stream", interval_seconds=INTERVAL_SECONDS,
            seed=1,
        ) as session:
            result = run_session(session, _chunked(ddos_trace.flows, 517))
        assert _rendered(result.extractions) == _rendered(
            expected.extractions
        )
        assert result.late_dropped == expected.late_dropped == 0


@settings(max_examples=5, deadline=None)
@given(chunk_rows=st.integers(min_value=97, max_value=4001))
def test_chunking_never_changes_results(ddos_trace, batch, chunk_rows):
    """Property: for ANY chunk size, a chunk-fed batch session equals
    `run_trace`, and a chunk-fed stream session equals it too (the
    trace is time-ordered, so no flow is ever late)."""
    with AnomalyExtractor(_config(), seed=1) as extractor:
        batched = run_session(
            extractor.session("batch", interval_seconds=INTERVAL_SECONDS),
            _chunked(ddos_trace.flows, chunk_rows),
        )
    with AnomalyExtractor(_config(), seed=1) as extractor:
        streamed = run_session(
            extractor.session("stream", interval_seconds=INTERVAL_SECONDS),
            _chunked(ddos_trace.flows, chunk_rows),
        )
    expected = _rendered(batch.extractions)
    assert _rendered(batched.extractions) == expected
    assert _rendered(streamed.extractions) == expected
    assert streamed.late_dropped == 0


class TestSessionLifecycle:
    def test_unknown_mode_rejected(self):
        with AnomalyExtractor(_config()) as extractor:
            with pytest.raises(ExtractionError, match="unknown session mode"):
                extractor.session("batch-stream")

    def test_feed_after_finish_rejected(self, tiny_flows):
        with AnomalyExtractor(_config()) as extractor:
            session = extractor.session("batch")
            session.feed(tiny_flows)
            session.finish()
            with pytest.raises(ExtractionError, match="already finished"):
                session.feed(tiny_flows)
            # finish is single-shot too...
            with pytest.raises(ExtractionError, match="already finished"):
                session.finish()
            # ...but the result stays readable.
            assert session.result().extractions == []

    def test_feed_after_close_rejected(self, tiny_flows):
        with AnomalyExtractor(_config()) as extractor:
            session = extractor.session("stream")
            session.close()
            session.close()  # idempotent
            with pytest.raises(ExtractionError, match="closed"):
                session.feed(tiny_flows)

    def test_borrowed_extractor_survives_session_close(self, tiny_flows):
        with AnomalyExtractor(_config(jobs=2, backend="thread")) as extractor:
            session = extractor.session("stream")
            session.close()
            # The borrowed engine pool is still usable.
            report = extractor.detector_bank.observe(tiny_flows)
            assert report.flow_count == len(tiny_flows)


class TestLeakRegression:
    """ISSUE 5 satellite: `close()` must release the store and the
    worker pool even when a mid-feed chunk raises."""

    def _poisoned_chunk(self):
        from repro.flows.table import FlowTable

        # A timestamp jump far past the assembler's max-gap guard: the
        # push raises ConfigError mid-feed.
        return FlowTable.from_arrays(
            [1], [2], [3], [4], [6], [1], [40], start=[1e12]
        )

    def test_mid_feed_raise_releases_store_and_pool(self, tmp_path):
        db = str(tmp_path / "leak.db")
        with pytest.raises(ConfigError):
            with api.session(
                _config(jobs=2, backend="thread", store_path=db),
                mode="stream",
                interval_seconds=INTERVAL_SECONDS,
            ) as session:
                session.feed(self._poisoned_chunk())
        store = session.extractor.store
        engine = session.extractor.engine
        assert session.closed
        assert store is not None and store._conn is None
        assert engine is not None and engine.executor._closed

    def test_owning_session_close_is_try_finally(self, tmp_path):
        """A pool that fails to shut down must not leak the store
        (mirrors AnomalyExtractor.close semantics on the new path)."""
        db = str(tmp_path / "chain.db")
        session = api.session(
            _config(jobs=2, backend="thread", store_path=db),
            mode="batch",
        )
        engine = session.extractor.engine
        store = session.extractor.store

        def boom():
            raise RuntimeError("pool shutdown failed")

        session.extractor._engine = type("E", (), {"close": staticmethod(boom)})()
        session.extractor._owns_engine = True
        with pytest.raises(RuntimeError, match="pool shutdown failed"):
            session.close()
        assert store._conn is None  # store released despite the raise
        engine.close()  # release the real pool the test detached

    def test_construction_failure_closes_store(self, tmp_path):
        db = str(tmp_path / "ctor.db")
        with pytest.raises(ExtractionError, match="unknown session mode"):
            api.session(_config(store_path=db), mode="bogus")
        # The store the extractor opened was closed on the error path:
        # a fresh open adopts the file cleanly (it was stamped, not
        # left locked mid-write).
        with api.open_store(db, must_exist=True) as store:
            assert len(store) == 0

    def test_batch_mode_rejects_bad_interval(self):
        with AnomalyExtractor(_config()) as extractor:
            with pytest.raises(ExtractionError, match="positive"):
                extractor.session("batch", interval_seconds=0.0)
