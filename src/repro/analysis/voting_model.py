"""Analytic voting model - equations (1)-(3) of the paper (Figs. 7-8).

With ``K`` clones and vote threshold ``V``:

* an anomalous feature value is included by each clone with probability
  ``beta`` (the probability that the value caused the detected
  disruption and its bin was identified).  Treating clones as
  independent yields a *lower bound* on the inclusion probability -
  equation (1) - because the per-clone inclusion events are positively
  correlated; its complement, equation (2), upper-bounds the miss
  probability ``beta*_V``;
* a normal feature value survives a clone only by colliding into one of
  the ``B`` anomalous bins out of ``m``, i.e. with probability
  ``q = B / m``, independently across clones because the hash functions
  are independent - equation (3) gives its survival probability exactly.

A Monte-Carlo simulator validates the analytic curves and lets us model
the positive correlation the bound ignores.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigError


def _check_kv(k: int, v: int) -> None:
    if k < 1:
        raise ConfigError(f"K must be >= 1: {k}")
    if not 1 <= v <= k:
        raise ConfigError(f"V must be in [1, K={k}]: {v}")


def binomial_tail(p: float, k: int, v: int) -> float:
    """P(X >= v) for X ~ Binomial(k, p)."""
    _check_kv(k, v)
    if not 0 <= p <= 1:
        raise ConfigError(f"probability out of range: {p}")
    # survival function is P(X > v-1)
    return float(stats.binom.sf(v - 1, k, p))


def p_anomalous_included(beta: float, k: int, v: int) -> float:
    """Equation (1): lower bound on P(anomalous value kept by voting)."""
    return binomial_tail(beta, k, v)


def p_anomalous_missed(beta: float, k: int, v: int) -> float:
    """Equation (2): upper bound beta*_V on P(anomalous value lost)."""
    return 1.0 - p_anomalous_included(beta, k, v)


def p_normal_included(
    b: int, m: int, k: int, v: int
) -> float:
    """Equation (3): P(normal value survives voting).

    Args:
        b: number of anomalous bins selected per clone (``B``).
        m: total bins per histogram (``m``).
        k: number of clones.
        v: vote threshold.
    """
    if m < 1 or not 0 <= b <= m:
        raise ConfigError(f"need 0 <= B <= m: B={b}, m={m}")
    return binomial_tail(b / m, k, v)


def expected_normal_values(
    b: int, m: int, k: int, v: int, observed_values: int
) -> float:
    """Average count of false-positive feature values after voting:
    gamma_V times the number of distinct values seen in the interval
    (the paper's example: 1 to 65 536 for ports)."""
    if observed_values < 0:
        raise ConfigError("observed_values must be >= 0")
    return p_normal_included(b, m, k, v) * observed_values


# ----------------------------------------------------------------------
# Monte-Carlo validation
# ----------------------------------------------------------------------
def simulate_anomalous_miss(
    beta: float,
    k: int,
    v: int,
    trials: int = 100_000,
    correlation: float = 0.0,
    seed: int = 0,
) -> float:
    """Simulated P(anomalous value lost by voting).

    ``correlation`` in [0, 1] interpolates between fully independent
    clones (0 - matches the analytic bound exactly) and fully correlated
    clones (1 - all clones agree).  The paper argues the true miss
    probability is *below* the independent bound because inclusion
    events are positively correlated; the simulation demonstrates it.
    """
    _check_kv(k, v)
    if not 0 <= correlation <= 1:
        raise ConfigError(f"correlation must be in [0, 1]: {correlation}")
    rng = np.random.default_rng(seed)
    # Gaussian copula-ish shortcut: one shared uniform + per-clone
    # uniforms; clone includes the value when the mixed uniform < beta.
    shared = rng.random(trials)
    misses = 0
    per_clone = rng.random((trials, k))
    mixed = correlation * shared[:, None] + (1 - correlation) * per_clone
    # Normalize the mixture so the marginal inclusion probability stays
    # beta: for a sum of uniforms this is approximate, so instead select
    # per-trial thresholds empirically via rank transform.
    ranks = mixed.argsort(axis=0).argsort(axis=0) / (trials - 1)
    included = ranks < beta
    votes = included.sum(axis=1)
    misses = int((votes < v).sum())
    return misses / trials


def simulate_normal_inclusion(
    b: int,
    m: int,
    k: int,
    v: int,
    trials: int = 100_000,
    seed: int = 0,
) -> float:
    """Simulated P(normal value survives voting): each clone hashes the
    value uniformly; survival requires landing in one of the B anomalous
    bins in >= V clones.  Independent across clones by construction."""
    _check_kv(k, v)
    if m < 1 or not 0 <= b <= m:
        raise ConfigError(f"need 0 <= B <= m: B={b}, m={m}")
    rng = np.random.default_rng(seed)
    bins = rng.integers(0, m, size=(trials, k))
    hits = bins < b  # WLOG the anomalous bins are 0..B-1
    votes = hits.sum(axis=1)
    return float((votes >= v).mean())


# ----------------------------------------------------------------------
# Figure grids
# ----------------------------------------------------------------------
def fig7_grid(
    beta: float = 0.97, k_range: range = range(1, 26)
) -> dict[int, list[tuple[int, float]]]:
    """Upper bound beta*_V vs K for the paper's Fig. 7 curve family.

    Returns {V: [(K, miss_probability), ...]} for V in {1, ceil(K/2), K}
    plus the fixed values the paper highlights (V=5, V=10).
    """
    grid: dict[int, list[tuple[int, float]]] = {}
    for k in k_range:
        for v in sorted({1, max(1, k // 2), 5, 10, k}):
            if v > k:
                continue
            grid.setdefault(v, []).append(
                (k, p_anomalous_missed(beta, k, v))
            )
    return grid


def fig8_grid(
    b: int, m: int = 1024, k_range: range = range(1, 26)
) -> dict[int, list[tuple[int, float]]]:
    """gamma_V vs K for Fig. 8(a) (B=1) and Fig. 8(b) (B=3)."""
    grid: dict[int, list[tuple[int, float]]] = {}
    for k in k_range:
        for v in sorted({1, max(1, k // 2), 5, 10, k}):
            if v > k:
                continue
            grid.setdefault(v, []).append((k, p_normal_included(b, m, k, v)))
    return grid
