"""Smoke tests: the example scripts run to completion.

Each example is executed in-process via runpy so coverage and import
state behave normally.  Only the fast examples run here; the two-week
campaign is exercised by the benchmark suite instead.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_sasser_worm(self, capsys):
        out = _run("sasser_worm.py", capsys)
        assert "union" in out
        assert "intersection" in out
        assert "445" in out and "9996" in out and "5554" in out

    def test_range_anomaly(self, capsys):
        out = _run("range_anomaly.py", capsys)
        assert "/24" in out
        assert "surfaces at level" in out

    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "ground truth" in out
        assert "cost reduction" in out

    def test_offline_forensics(self, capsys):
        out = _run("offline_forensics.py", capsys)
        assert "support schedule" in out
        assert "dstPort=7000" in out

    def test_incident_triage(self, capsys):
        out = _run("incident_triage.py", capsys)
        assert "correlated incidents" in out
        assert "drill-down" in out
        assert "ranked first" in out

    def test_fleet_two_links(self, capsys):
        out = _run("fleet_two_links.py", capsys)
        assert "per-link summaries" in out
        assert "upstream" in out and "peering" in out
        assert "fleet-wide incident ranking" in out
        assert "the DDoS surfaced on link" in out

    def test_detector_tuning(self, capsys):
        out = _run("detector_tuning.py", capsys)
        assert "ROC sweep" in out
        assert "recommendation" in out

    def test_custom_plugin(self, capsys):
        from repro.registry import miners

        try:
            out = _run("custom_plugin.py", capsys)
        finally:
            # runpy re-executes the module; drop its registration so a
            # repeated run (or another test) can register again.
            if "two-shard" in dict(miners):
                miners.unregister("two-shard")
        assert "two-shard" in out
        assert "identical to the built-in apriori report: True" in out

    def test_run_toml_example_loads(self):
        from repro.core import ExtractionConfig

        config = ExtractionConfig.from_toml(EXAMPLES / "run.toml")
        assert config.min_support == 300
        assert config.detector.bins == 256
        assert config.keep_extractions is False
        assert len(config.features) == 5

    def test_examples_are_executable_files(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 7
        for script in scripts:
            first = script.read_text().splitlines()[0]
            assert first.startswith("#!"), f"{script.name} missing shebang"
