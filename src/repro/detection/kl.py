"""Kullback-Leibler distance between histogram distributions.

Section II-C: each detector computes, at the end of every interval, the
KL distance between the current feature distribution and the previous
interval's distribution (used as the reference, avoiding training):

    D(p || q) = sum_i p_i * log2(p_i / q_i)

Coinciding distributions give 0; deviations give positive spikes at the
start and end of an anomaly.  The paper leaves empty-bin handling
unspecified; we use additive smoothing so the distance stays finite
(documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

#: Default Laplace pseudo-count applied to both distributions.
DEFAULT_PSEUDOCOUNT = 0.5


def kl_distance(p: np.ndarray, q: np.ndarray) -> float:
    """KL distance (in bits) between two discrete distributions.

    Both inputs must be proper distributions on the same support: equal
    length, non-negative, each summing to ~1.  Zero p-bins contribute 0;
    a zero q-bin with positive p yields ``inf`` (use smoothing upstream
    to avoid this).
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ConfigError(f"shape mismatch: {p.shape} vs {q.shape}")
    if p.ndim != 1:
        raise ConfigError("distributions must be one-dimensional")
    if (p < 0).any() or (q < 0).any():
        raise ConfigError("distributions must be non-negative")
    if not np.isclose(p.sum(), 1.0, atol=1e-6) or not np.isclose(
        q.sum(), 1.0, atol=1e-6
    ):
        raise ConfigError("distributions must sum to 1")
    mask = p > 0
    if not mask.any():
        return 0.0
    with np.errstate(divide="ignore"):
        ratios = np.log2(p[mask] / q[mask])
    return float(np.sum(p[mask] * ratios))


def kl_from_counts(
    current: np.ndarray,
    reference: np.ndarray,
    pseudocount: float = DEFAULT_PSEUDOCOUNT,
) -> float:
    """KL distance computed from raw bin *counts* with smoothing.

    This is the exact quantity the detector tracks: counts are Laplace-
    smoothed with ``pseudocount`` and normalized before the distance is
    taken.  Smoothing guarantees finiteness even for bins that empty out
    between intervals.
    """
    if pseudocount < 0:
        raise ConfigError(f"pseudocount must be >= 0: {pseudocount}")
    cur = np.asarray(current, dtype=np.float64) + pseudocount
    ref = np.asarray(reference, dtype=np.float64) + pseudocount
    if cur.shape != ref.shape:
        raise ConfigError(f"shape mismatch: {cur.shape} vs {ref.shape}")
    cur_total = cur.sum()
    ref_total = ref.sum()
    if cur_total == 0 or ref_total == 0:
        # Both-zero histograms (pseudocount 0 and empty intervals): no
        # information, no distance.
        return 0.0
    return kl_distance(cur / cur_total, ref / ref_total)


def first_difference(series: np.ndarray) -> np.ndarray:
    """First difference of a KL time series; element ``t`` is
    ``series[t] - series[t-1]`` and index 0 is defined as 0.

    The paper observed this difference to be approximately normal with
    zero mean, which justifies the MAD-based threshold of
    :mod:`repro.detection.threshold`.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ConfigError("KL series must be one-dimensional")
    if len(series) == 0:
        return np.empty(0, dtype=np.float64)
    diff = np.empty_like(series)
    diff[0] = 0.0
    diff[1:] = series[1:] - series[:-1]
    return diff
