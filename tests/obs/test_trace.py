"""Span tracer unit contract: ids, propagation, adoption, exporters."""

import json
import os

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    current_span,
    inject,
    render_trace,
    render_trace_chrome,
    render_trace_jsonl,
    render_trace_text,
    worker_span,
)

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden_chrome_trace.json"
)


class FakeClock:
    """Deterministic clock: 100.0, 100.5, 101.0, ..."""

    def __init__(self, start: float = 100.0, step: float = 0.5):
        self._now = start - step
        self._step = step

    def __call__(self) -> float:
        self._now += self._step
        return self._now


def fixture_tracer() -> Tracer:
    """A small two-trace span forest with deterministic timestamps."""
    tracer = Tracer(clock=FakeClock())
    with tracer.span("session.run", mode="stream") as root:
        with tracer.span("stage.binning", rows=64):
            tracer.event("assembler.watermark", watermark=900.0)
        with tracer.span("session.interval", interval=0, flows=64):
            with tracer.span("stage.detection") as detection:
                detection.set_attribute("alarm", True)
        root.set_attribute("intervals", 1)
    tracer.span("fleet.rank", profile="balanced").end()
    return tracer


class TestSpanLifecycle:
    def test_ids_are_deterministic_counters(self):
        tracer = Tracer(clock=FakeClock())
        a = tracer.span("session.run")
        b = tracer.span("fleet.run")
        assert a.trace_id == "0000000000000001"
        assert b.trace_id == "0000000000000002"
        assert (a.span_id, b.span_id) == ("00000001", "00000002")

    def test_with_block_parents_and_ends(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("session.run") as root:
            assert current_span() is root
            child = tracer.span("stage.binning")
            assert child.parent_id == root.span_id
            assert child.trace_id == root.trace_id
        assert current_span() is None
        assert root.end_time is not None
        assert child.end_time is None  # never entered, still open

    def test_end_is_idempotent_first_wins(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("session.run")
        span.end()
        first = span.end_time
        span.end()
        assert span.end_time == first
        assert span.duration == pytest.approx(first - span.start_time)

    def test_explicit_parent_beats_ambient(self):
        tracer = Tracer(clock=FakeClock())
        other = tracer.span("fleet.run")
        with tracer.span("session.run"):
            child = tracer.span("session.interval", parent=other)
        assert child.parent_id == other.span_id
        assert child.trace_id == other.trace_id

    def test_active_reactivates_without_ending(self):
        tracer = Tracer(clock=FakeClock())
        root = tracer.span("session.run")
        with root.active():
            assert current_span() is root
            child = tracer.span("stage.binning")
        assert current_span() is None
        assert root.end_time is None
        assert child.parent_id == root.span_id

    def test_event_attaches_to_ambient_span_only(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("assembler.watermark", watermark=1.0)  # dropped
        with tracer.span("session.run") as root:
            tracer.event("assembler.backpressure", interval=3)
        assert [e.name for e in root.events] == ["assembler.backpressure"]
        assert root.events[0].attributes == {"interval": 3}

    def test_foreign_tracer_span_is_not_a_parent(self):
        mine, theirs = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
        with theirs.span("session.run"):
            span = mine.span("stage.binning")
            mine.event("assembler.watermark", watermark=1.0)
        assert span.parent_id is None
        theirs_root = theirs.spans[0]
        assert theirs_root.events == []

    def test_spans_registered_at_creation(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("session.run")  # never ended: a "crash"
        assert tracer.spans == (span,)
        assert "open" in render_trace_text(tracer)


class TestNullObjects:
    def test_null_tracer_hands_out_the_shared_null_span(self):
        span = NULL_TRACER.span("anything", flows=3)
        assert span is NULL_SPAN
        assert not span.enabled and not NULL_TRACER.enabled

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("x") as span:
            span.set_attribute("k", 1)
            span.add_event("e")
            assert current_span() is None
        assert span.active() is span
        with span.active():
            pass
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.adopt([{"trace_id": "t"}]) == []

    def test_null_exports_are_empty(self):
        assert render_trace_jsonl(NULL_TRACER) == ""
        assert render_trace_text(NULL_TRACER) == ""
        doc = json.loads(render_trace_chrome(NULL_TRACER))
        assert doc["traceEvents"] == []


class TestCarrierPropagation:
    def test_inject_requires_an_active_span(self):
        assert inject() is None
        tracer = Tracer(clock=FakeClock())
        with tracer.span("session.run") as root:
            carrier = inject()
        assert carrier == {
            "trace_id": root.trace_id, "span_id": root.span_id,
        }

    def test_worker_span_none_carrier_is_a_noop(self):
        with worker_span("mining.shard", None) as record:
            assert record is None

    def test_worker_record_round_trips_through_adopt(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("session.run") as root:
            carrier = inject()
        worker_clock = FakeClock(start=200.0)
        with worker_span(
            "mining.shard", carrier, clock=worker_clock, shard=2
        ) as record:
            pass
        assert record["end"] == 200.5
        adopted = tracer.adopt([record, None])
        assert len(adopted) == 1
        span = adopted[0]
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
        assert span.name == "mining.shard"
        assert span.attributes == {"shard": 2}
        assert (span.start_time, span.end_time) == (200.0, 200.5)
        # Adopted spans render nested under their parent.
        text = render_trace_text(tracer)
        assert "  mining.shard" in text


class TestExporters:
    def test_jsonl_is_one_canonical_doc_per_span(self):
        tracer = fixture_tracer()
        lines = render_trace_jsonl(tracer).splitlines()
        assert len(lines) == len(tracer.spans)
        first = json.loads(lines[0])
        assert first["name"] == "session.run"
        assert first["parent_id"] is None
        assert first["attributes"] == {"intervals": 1, "mode": "stream"}
        # Canonical form: sorted keys, no spaces.
        assert lines[0] == json.dumps(
            first, sort_keys=True, separators=(",", ":")
        )

    def test_text_tree_nests_and_stamps(self):
        text = render_trace_text(fixture_tracer())
        assert text.splitlines()[0] == "trace 0000000000000001"
        assert "  session.run 4000.000ms [intervals=1 mode=stream]" in text
        assert "    stage.binning" in text
        assert "@ +500.000ms assembler.watermark [watermark=900.0]" in text
        assert "      stage.detection 500.000ms [alarm=True]" in text
        assert "trace 0000000000000002" in text  # fleet.rank root

    def test_chrome_export_matches_golden(self):
        rendered = render_trace_chrome(fixture_tracer())
        with open(GOLDEN) as handle:
            assert rendered == handle.read().rstrip("\n")
        doc = json.loads(rendered)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i"}
        # Two traces -> two tid rows under one pid.
        assert {e["tid"] for e in doc["traceEvents"]} == {1, 2}

    def test_render_trace_dispatch(self):
        tracer = fixture_tracer()
        assert render_trace(tracer) == render_trace_jsonl(tracer)
        assert render_trace(tracer, "text") == render_trace_text(tracer)
        with pytest.raises(ValueError, match="unknown trace format"):
            render_trace(tracer, "otlp")
